#include "stats/span_recorder.hh"

namespace emissary::stats
{

namespace
{

/** Monotonically unique recorder ids so a thread-local buffer cache
 *  can never alias a destroyed recorder whose address was reused. */
std::atomic<std::uint64_t> next_recorder_id{1};

struct TlsCache
{
    std::uint64_t recorderId = 0;
    /** The owning recorder's TrackBuffer (opaque: the type is
     *  private to SpanRecorder). */
    void *buffer = nullptr;
};

thread_local TlsCache tls_cache;

} // namespace

SpanRecorder::SpanRecorder()
    : id_(next_recorder_id.fetch_add(1)),
      epoch_(std::chrono::steady_clock::now())
{
}

std::uint64_t
SpanRecorder::nowNs() const
{
    return toNs(std::chrono::steady_clock::now());
}

std::uint64_t
SpanRecorder::toNs(std::chrono::steady_clock::time_point t) const
{
    if (t <= epoch_)
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t -
                                                             epoch_)
            .count());
}

SpanRecorder::TrackBuffer &
SpanRecorder::threadBuffer()
{
    if (tls_cache.recorderId == id_ && tls_cache.buffer)
        return *static_cast<TrackBuffer *>(tls_cache.buffer);

    std::lock_guard<std::mutex> lock(mutex_);
    TrackBuffer *&slot = byThread_[std::this_thread::get_id()];
    if (!slot) {
        tracks_.push_back(std::make_unique<TrackBuffer>());
        slot = tracks_.back().get();
    }
    tls_cache = {id_, slot};
    return *slot;
}

void
SpanRecorder::labelThread(const std::string &label)
{
    if (!enabled())
        return;
    TrackBuffer &buffer = threadBuffer();
    if (buffer.label != label)
        buffer.label = label;
}

void
SpanRecorder::recordSpan(
    const char *name, std::uint64_t start_ns, std::uint64_t end_ns,
    std::vector<std::pair<std::string, JsonValue>> args)
{
    if (!enabled())
        return;
    TrackBuffer &buffer = threadBuffer();
    buffer.spans.push_back(
        {name, start_ns, end_ns > start_ns ? end_ns - start_ns : 0,
         buffer.depth, std::move(args)});
}

void
SpanRecorder::counter(const char *name, double value)
{
    if (!enabled())
        return;
    const std::uint64_t at = nowNs();
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.push_back({name, at, value});
}

std::vector<SpanRecorder::Track>
SpanRecorder::tracks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Track> out;
    out.reserve(tracks_.size());
    for (const auto &buffer : tracks_)
        out.push_back({buffer->label, buffer->spans});
    return out;
}

std::vector<SpanRecorder::CounterSample>
SpanRecorder::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

std::size_t
SpanRecorder::spanCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t count = 0;
    for (const auto &buffer : tracks_)
        count += buffer->spans.size();
    return count;
}

ScopedTimer::ScopedTimer(SpanRecorder *recorder, const char *name)
    : name_(name)
{
    if (!recorder || !recorder->enabled())
        return;
    recorder_ = recorder;
    buffer_ = &recorder->threadBuffer();
    startNs_ = recorder->nowNs();
    ++buffer_->depth;
}

ScopedTimer::~ScopedTimer()
{
    if (!recorder_)
        return;
    const std::uint64_t end_ns = recorder_->nowNs();
    --buffer_->depth;
    buffer_->spans.push_back(
        {name_, startNs_,
         end_ns > startNs_ ? end_ns - startNs_ : 0, buffer_->depth,
         std::move(args_)});
}

void
ScopedTimer::arg(const char *key, JsonValue value)
{
    if (!recorder_)
        return;
    args_.emplace_back(key, std::move(value));
}

} // namespace emissary::stats
