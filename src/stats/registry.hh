/**
 * @file
 * Named scalar statistics, gem5-style: components register counters by
 * dotted name and reports enumerate them generically.
 */

#ifndef EMISSARY_STATS_REGISTRY_HH
#define EMISSARY_STATS_REGISTRY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace emissary::stats
{

/** A single monotonically-increasing counter. */
class Counter
{
  public:
    void increment(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Registry mapping dotted stat names ("l2.inst_misses") to counters.
 *
 * Components hold references to counters they create; the registry
 * owns storage so reports can walk everything at end of simulation.
 */
class Registry
{
  public:
    /** Create (or fetch) the counter registered under @p name. */
    Counter &counter(const std::string &name);

    /** Look up a counter's value; returns 0 when absent. */
    std::uint64_t value(const std::string &name) const;

    /** True when a counter with @p name exists. */
    bool has(const std::string &name) const;

    /** All registered names in sorted order. */
    std::vector<std::string> names() const;

    /** Reset every counter to zero (start of measurement window). */
    void resetAll();

  private:
    std::map<std::string, Counter> counters_;
};

} // namespace emissary::stats

#endif // EMISSARY_STATS_REGISTRY_HH
