#include "stats/sampler.hh"

#include "stats/registry.hh"

namespace emissary::stats
{

void
Sampler::record(Sample sample)
{
    const std::uint64_t committed = sample.instructions;
    samples_.push_back(std::move(sample));
    next_ += interval_;
    if (next_ <= committed) {
        // The run jumped more than a whole interval (huge commit
        // burst or a late first sample): resynchronise forward so we
        // never emit a backlog of stale samples.
        next_ = committed + interval_;
    }
}

void
Sampler::reset()
{
    samples_.clear();
    next_ = interval_;
}

std::vector<std::pair<std::string, std::uint64_t>>
Sampler::snapshotCounters(const Registry &registry)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    const auto names = registry.names();
    out.reserve(names.size());
    for (const std::string &name : names)
        out.emplace_back(name, registry.value(name));
    return out;
}

JsonValue
Sampler::toJson() const
{
    JsonValue root = JsonValue::object();
    root.set("interval", JsonValue(interval_));
    JsonValue &list = root.set("samples", JsonValue::array());
    for (const Sample &s : samples_) {
        JsonValue entry = JsonValue::object();
        entry.set("instructions", JsonValue(s.instructions));
        entry.set("cycles", JsonValue(s.cycles));
        JsonValue counters = JsonValue::object();
        for (const auto &[name, value] : s.counters)
            counters.set(name, JsonValue(value));
        entry.set("counters", std::move(counters));
        JsonValue occupancy = JsonValue::array();
        for (const std::uint64_t count : s.priorityOccupancy)
            occupancy.push(JsonValue(count));
        entry.set("priority_occupancy", std::move(occupancy));
        list.push(std::move(entry));
    }
    return root;
}

} // namespace emissary::stats
