#include "stats/chrome_trace.hh"

#include <fstream>
#include <stdexcept>

namespace emissary::stats
{

namespace
{

/** trace_event timestamps are microseconds; sub-µs precision is kept
 *  as a fractional value rather than rounded away. */
double
toMicros(std::uint64_t ns)
{
    return static_cast<double>(ns) / 1000.0;
}

JsonValue
eventBase(const char *name, const char *phase, unsigned tid)
{
    JsonValue event = JsonValue::object();
    event.set("name", JsonValue(name));
    event.set("ph", JsonValue(phase));
    event.set("pid", JsonValue(0u));
    event.set("tid", JsonValue(tid));
    return event;
}

} // namespace

ChromeTraceWriter::ChromeTraceWriter(const SpanRecorder &recorder)
    : tracks_(recorder.tracks()), counters_(recorder.counters())
{
}

JsonValue
ChromeTraceWriter::toJson() const
{
    JsonValue events = JsonValue::array();

    {
        JsonValue process = eventBase("process_name", "M", 0);
        JsonValue args = JsonValue::object();
        args.set("name", JsonValue("emissary"));
        process.set("args", std::move(args));
        events.push(std::move(process));
    }

    for (std::size_t t = 0; t < tracks_.size(); ++t) {
        const SpanRecorder::Track &track = tracks_[t];
        const unsigned tid = static_cast<unsigned>(t);

        JsonValue meta = eventBase("thread_name", "M", tid);
        JsonValue args = JsonValue::object();
        args.set("name",
                 JsonValue(track.label.empty()
                               ? "track-" + std::to_string(t)
                               : track.label));
        meta.set("args", std::move(args));
        events.push(std::move(meta));

        for (const SpanRecorder::Span &span : track.spans) {
            JsonValue event = eventBase(span.name, "X", tid);
            event.set("cat", JsonValue("flight"));
            event.set("ts", JsonValue(toMicros(span.startNs)));
            event.set("dur", JsonValue(toMicros(span.durationNs)));
            if (!span.args.empty()) {
                JsonValue span_args = JsonValue::object();
                for (const auto &[key, value] : span.args)
                    span_args.set(key, value);
                event.set("args", std::move(span_args));
            }
            events.push(std::move(event));
        }
    }

    for (const SpanRecorder::CounterSample &sample : counters_) {
        JsonValue event = eventBase(sample.name, "C", 0);
        event.set("ts", JsonValue(toMicros(sample.timeNs)));
        JsonValue args = JsonValue::object();
        args.set("value", JsonValue(sample.value));
        event.set("args", std::move(args));
        events.push(std::move(event));
    }

    return events;
}

void
ChromeTraceWriter::writeTo(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        throw std::runtime_error("ChromeTraceWriter: cannot write " +
                                 path);
    out << toJson().dump() << '\n';
    if (!out)
        throw std::runtime_error("ChromeTraceWriter: write failed: " +
                                 path);
}

void
ChromeTraceWriter::write(const std::string &path,
                         const SpanRecorder &recorder)
{
    ChromeTraceWriter(recorder).writeTo(path);
}

} // namespace emissary::stats
