/**
 * @file
 * Interval time-series sampler for the observability layer.
 *
 * The paper's most interesting evidence is time-resolved — the Fig. 8
 * per-set P-bit occupancy trajectory, starvation-over-time curves —
 * so the simulator snapshots its counter registry (and the EMISSARY
 * priority-bit occupancy of the L2) every K committed instructions
 * into this in-memory series, exported as JSON at end of run.
 *
 * The sampler is cadence-aware but otherwise passive: the simulation
 * loop asks due(committed) once per cycle (a single compare when
 * enabled, nothing when the interval is 0) and hands over a complete
 * Sample when a boundary is crossed.
 */

#ifndef EMISSARY_STATS_SAMPLER_HH
#define EMISSARY_STATS_SAMPLER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "stats/json.hh"

namespace emissary::stats
{

class Registry;

/** One interval snapshot of the measurement window. */
struct Sample
{
    /** Committed instructions since the window began. */
    std::uint64_t instructions = 0;
    /** Cycles since the window began. */
    std::uint64_t cycles = 0;
    /** Registry counter values at sample time, sorted by name. */
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    /** Sets holding exactly k high-priority (P=1) lines, indexed by
     *  k in 0..ways (the Fig. 8 occupancy distribution). */
    std::vector<std::uint64_t> priorityOccupancy;
};

/** Fixed-interval snapshot collector. */
class Sampler
{
  public:
    Sampler() = default;

    /** @param interval Committed instructions between samples;
     *         0 disables the sampler entirely. */
    explicit Sampler(std::uint64_t interval)
        : interval_(interval), next_(interval)
    {
    }

    std::uint64_t interval() const { return interval_; }
    bool enabled() const { return interval_ > 0; }

    /** True when @p committed has crossed the next sample boundary. */
    bool
    due(std::uint64_t committed) const
    {
        return interval_ > 0 && committed >= next_;
    }

    /** Store one snapshot and advance the boundary. Commit width can
     *  jump several instructions past the boundary in one cycle; the
     *  cadence stays anchored to multiples of the interval unless a
     *  whole interval was skipped. */
    void record(Sample sample);

    const std::vector<Sample> &samples() const { return samples_; }

    /** Drop all samples and restart the cadence (new window). */
    void reset();

    /** Snapshot @p registry into a Sample's counters field. */
    static std::vector<std::pair<std::string, std::uint64_t>>
    snapshotCounters(const Registry &registry);

    /** The full series: {"interval": K, "samples": [...]}. */
    JsonValue toJson() const;

  private:
    std::uint64_t interval_ = 0;
    std::uint64_t next_ = 0;
    std::vector<Sample> samples_;
};

} // namespace emissary::stats

#endif // EMISSARY_STATS_SAMPLER_HH
