#include "stats/json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <limits>
#include <stdexcept>

namespace emissary::stats
{

JsonValue::JsonValue(std::int64_t value)
{
    // Counters come in as unsigned; keep the sign split canonical so
    // equality and round-trips do not depend on which ctor was used.
    if (value >= 0) {
        type_ = Type::Uint;
        uint_ = static_cast<std::uint64_t>(value);
    } else {
        type_ = Type::Int;
        int_ = value;
    }
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.type_ = Type::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.type_ = Type::Object;
    return v;
}

JsonValue &
JsonValue::push(JsonValue value)
{
    if (type_ != Type::Array)
        throw std::domain_error("JsonValue::push: not an array");
    array_.push_back(std::move(value));
    return array_.back();
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue value)
{
    if (type_ != Type::Object)
        throw std::domain_error("JsonValue::set: not an object");
    for (auto &[existing, stored] : object_) {
        if (existing == key) {
            stored = std::move(value);
            return stored;
        }
    }
    object_.emplace_back(key, std::move(value));
    return object_.back().second;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[existing, stored] : object_)
        if (existing == key)
            return &stored;
    return nullptr;
}

JsonValue *
JsonValue::find(const std::string &key)
{
    if (type_ != Type::Object)
        return nullptr;
    for (auto &[existing, stored] : object_)
        if (existing == key)
            return &stored;
    return nullptr;
}

std::size_t
JsonValue::size() const
{
    if (type_ == Type::Array)
        return array_.size();
    if (type_ == Type::Object)
        return object_.size();
    return 0;
}

const JsonValue &
JsonValue::at(std::size_t index) const
{
    if (type_ != Type::Array)
        throw std::domain_error("JsonValue::at: not an array");
    return array_.at(index);
}

JsonValue &
JsonValue::at(std::size_t index)
{
    if (type_ != Type::Array)
        throw std::domain_error("JsonValue::at: not an array");
    return array_.at(index);
}

bool
JsonValue::asBool() const
{
    if (type_ != Type::Bool)
        throw std::domain_error("JsonValue::asBool: not a bool");
    return bool_;
}

std::uint64_t
JsonValue::asUint() const
{
    if (type_ == Type::Uint)
        return uint_;
    if (type_ == Type::Int && int_ >= 0)
        return static_cast<std::uint64_t>(int_);
    throw std::domain_error("JsonValue::asUint: not a non-negative "
                            "integer");
}

std::int64_t
JsonValue::asInt() const
{
    if (type_ == Type::Int)
        return int_;
    if (type_ == Type::Uint) {
        if (uint_ > static_cast<std::uint64_t>(
                        std::numeric_limits<std::int64_t>::max()))
            throw std::domain_error(
                "JsonValue::asInt: value exceeds int64");
        return static_cast<std::int64_t>(uint_);
    }
    throw std::domain_error("JsonValue::asInt: not an integer");
}

double
JsonValue::asDouble() const
{
    switch (type_) {
      case Type::Double:
        return double_;
      case Type::Uint:
        return static_cast<double>(uint_);
      case Type::Int:
        return static_cast<double>(int_);
      default:
        throw std::domain_error("JsonValue::asDouble: not a number");
    }
}

const std::string &
JsonValue::asString() const
{
    if (type_ != Type::String)
        throw std::domain_error("JsonValue::asString: not a string");
    return string_;
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    // Int/Uint compare numerically (the parser canonicalises
    // non-negative integers to Uint, but be safe about mixes).
    if (isNumber() && other.isNumber()) {
        if (type_ == Type::Double || other.type_ == Type::Double)
            return asDouble() == other.asDouble();
        if (type_ == Type::Int || other.type_ == Type::Int) {
            const bool neg_a = type_ == Type::Int && int_ < 0;
            const bool neg_b =
                other.type_ == Type::Int && other.int_ < 0;
            if (neg_a != neg_b)
                return false;
            if (neg_a)
                return int_ == other.int_;
        }
        return asUint() == other.asUint();
    }
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Null:
        return true;
      case Type::Bool:
        return bool_ == other.bool_;
      case Type::String:
        return string_ == other.string_;
      case Type::Array:
        return array_ == other.array_;
      case Type::Object:
        return object_ == other.object_;
      default:
        return false;  // Numbers handled above.
    }
}

std::string
JsonValue::escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;  // UTF-8 bytes pass through untouched.
            }
        }
    }
    return out;
}

namespace
{

void
appendDouble(std::string &out, double value)
{
    if (!std::isfinite(value)) {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out += "null";
        return;
    }
    char buf[32];
    // Shortest round-trippable form: try increasing precision.
    for (const int precision : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value)
            break;
    }
    out += buf;
    // Keep integers recognisably floating ("1.0", not "1") so a
    // round trip preserves the double type.
    if (out.find_first_of(".eE", out.size() - std::strlen(buf)) ==
        std::string::npos)
        out += ".0";
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    const auto newline = [&](int level) {
        if (indent > 0) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent) * level, ' ');
        }
    };

    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Int:
        out += std::to_string(int_);
        break;
      case Type::Uint:
        out += std::to_string(uint_);
        break;
      case Type::Double:
        appendDouble(out, double_);
        break;
      case Type::String:
        out += '"';
        out += escape(string_);
        out += '"';
        break;
      case Type::Array:
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i > 0)
                out += ',';
            newline(depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Type::Object:
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i > 0)
                out += ",";
            newline(depth + 1);
            out += '"';
            out += escape(object_[i].first);
            out += indent > 0 ? "\": " : "\":";
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

/** Recursive-descent parser over a complete document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    document()
    {
        skipWs();
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::invalid_argument(
            "JSON parse error at offset " + std::to_string(pos_) +
            ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *literal)
    {
        const std::size_t n = std::strlen(literal);
        if (text_.compare(pos_, n, literal) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    void
    appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    unsigned
    hex4()
    {
        if (pos_ + 4 > text_.size())
            fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("bad hex digit in \\u escape");
        }
        return code;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("truncated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                unsigned code = hex4();
                if (code >= 0xD800 && code <= 0xDBFF) {
                    // High surrogate: a low surrogate must follow.
                    if (!consumeLiteral("\\u"))
                        fail("lone high surrogate");
                    const unsigned low = hex4();
                    if (low < 0xDC00 || low > 0xDFFF)
                        fail("bad low surrogate");
                    code = 0x10000 + ((code - 0xD800) << 10) +
                           (low - 0xDC00);
                } else if (code >= 0xDC00 && code <= 0xDFFF) {
                    fail("lone low surrogate");
                }
                appendUtf8(out, code);
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            fail("malformed number");
        const bool leading_zero = peek() == '0';
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (leading_zero &&
            pos_ - start - (text_[start] == '-' ? 1 : 0) > 1)
            fail("leading zero in number");
        bool is_double = false;
        if (peek() == '.') {
            is_double = true;
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("malformed fraction");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            is_double = true;
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("malformed exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        const std::string token = text_.substr(start, pos_ - start);
        if (!is_double) {
            errno = 0;
            if (token[0] == '-') {
                char *end = nullptr;
                const long long v =
                    std::strtoll(token.c_str(), &end, 10);
                if (errno != ERANGE && end == token.c_str() + token.size())
                    return JsonValue(static_cast<std::int64_t>(v));
            } else {
                char *end = nullptr;
                const unsigned long long v =
                    std::strtoull(token.c_str(), &end, 10);
                if (errno != ERANGE && end == token.c_str() + token.size())
                    return JsonValue(static_cast<std::uint64_t>(v));
            }
            // Integer overflowed 64 bits: fall back to double.
        }
        return JsonValue(std::strtod(token.c_str(), nullptr));
    }

    JsonValue
    value()
    {
        if (depth_ > kMaxDepth)
            fail("nesting too deep");
        switch (peek()) {
          case 'n':
            if (consumeLiteral("null"))
                return JsonValue();
            fail("bad literal");
          case 't':
            if (consumeLiteral("true"))
                return JsonValue(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return JsonValue(false);
            fail("bad literal");
          case '"':
            return JsonValue(string());
          case '[': {
            ++pos_;
            ++depth_;
            JsonValue arr = JsonValue::array();
            skipWs();
            if (peek() == ']') {
                ++pos_;
                --depth_;
                return arr;
            }
            while (true) {
                skipWs();
                arr.push(value());
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                --depth_;
                return arr;
            }
          }
          case '{': {
            ++pos_;
            ++depth_;
            JsonValue obj = JsonValue::object();
            skipWs();
            if (peek() == '}') {
                ++pos_;
                --depth_;
                return obj;
            }
            while (true) {
                skipWs();
                const std::string key = string();
                skipWs();
                expect(':');
                skipWs();
                obj.set(key, value());
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                --depth_;
                return obj;
            }
          }
          default:
            return number();
        }
    }

    static constexpr int kMaxDepth = 256;

    const std::string &text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    return Parser(text).document();
}

void
writeJsonFile(const std::string &path, const JsonValue &value)
{
    // Artifact paths routinely point into directories that do not
    // exist yet (EMISSARY_BENCH_JSON, bench_gate --append/--report,
    // the service's --cache-dir): create the parents rather than
    // failing on open, and name the directory when creation itself
    // fails.
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
        if (ec)
            throw std::runtime_error(
                "writeJsonFile: cannot create directory '" +
                parent.string() + "' for '" + path +
                "': " + ec.message());
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        throw std::runtime_error("writeJsonFile: cannot open '" +
                                 path + "'");
    out << value.dump(2) << '\n';
    out.flush();
    if (!out)
        throw std::runtime_error("writeJsonFile: write failed for '" +
                                 path + "'");
}

} // namespace emissary::stats
