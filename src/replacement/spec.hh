/**
 * @file
 * Parser and factory for the paper's policy notation (Table 3).
 *
 * Accepted spellings:
 *
 *   "M:1" (or "LRU")        classic LRU
 *   "M:0" (or "LIP")        LRU-insertion policy
 *   "M:R(1/32)" (or "BIP")  bimodal insertion
 *   "M:S", "M:S&E", "M:S&E&R(1/32)"  starvation-aware insertion
 *   "P(8):S&E&R(1/32)"      EMISSARY, N = 8
 *   "EMISSARY"              alias for P(8):S&E&R(1/32)
 *   "TPLRU"                 tree pseudo-LRU (the evaluation baseline)
 *   "SRRIP", "BRRIP", "DRRIP", "PDP", "DCLIP"  comparators
 *
 * A PolicySpec also decides how mode selection scopes to line type:
 * bimodal selection applies to instruction lines only (§2); data
 * lines default to MRU insertion under M: policies and to low
 * priority under P(N) policies.
 */

#ifndef EMISSARY_REPLACEMENT_SPEC_HH
#define EMISSARY_REPLACEMENT_SPEC_HH

#include <memory>
#include <string>
#include <vector>

#include "replacement/mode.hh"
#include "replacement/policy.hh"

namespace emissary::replacement
{

/** Policy families the factory can instantiate. */
enum class PolicyFamily : std::uint8_t
{
    InsertionLru,  ///< M:<sel> — bimodal insertion on true LRU.
    TreePlru,      ///< Plain TPLRU (evaluation baseline).
    EmissaryP,     ///< P(N):<sel> — the paper's contribution.
    Srrip,
    Brrip,
    Drrip,
    Pdp,
    Dclip,
};

/** A parsed policy description. */
struct PolicySpec
{
    PolicyFamily family = PolicyFamily::TreePlru;
    ModeSelector selector;      ///< For InsertionLru / EmissaryP.
    unsigned protectN = 8;      ///< The N of P(N).
    bool emissaryTreePlru = true; ///< Dual-tree TPLRU vs true LRU.
    unsigned pdpDistance = 64;  ///< Static protecting distance.

    /**
     * Parse the paper notation.
     * @throws std::invalid_argument on malformed input.
     */
    static PolicySpec parse(const std::string &text);

    /** Render back to canonical notation. */
    std::string toString() const;

    /** True for families that consume the starvation signal. */
    bool usesStarvation() const;

    /**
     * Mode selection with the paper's instruction-only scoping: data
     * lines are high-priority (MRU) under M: policies and always
     * low-priority under P(N) policies; instruction lines evaluate
     * the selector.
     */
    bool computePriority(const MissContext &ctx, Rng &rng) const;
};

/** Instantiate the policy an array should run. */
std::unique_ptr<ReplacementPolicy>
makePolicy(const PolicySpec &spec, unsigned num_sets, unsigned num_ways,
           std::uint64_t seed = 0xCAC4E5EEDULL);

/** The Fig. 7 comparison set, in the paper's legend order. */
std::vector<std::string> figure7PolicyNames();

} // namespace emissary::replacement

#endif // EMISSARY_REPLACEMENT_SPEC_HH
