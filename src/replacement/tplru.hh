/**
 * @file
 * Tree pseudo-LRU (TPLRU), the baseline policy of the paper's
 * evaluation (Table 4) and the building block of the PLRU-based
 * EMISSARY implementation (§4.2). A tree of ways-1 bits per set
 * records, at each internal node, which half was touched less
 * recently.
 */

#ifndef EMISSARY_REPLACEMENT_TPLRU_HH
#define EMISSARY_REPLACEMENT_TPLRU_HH

#include <cstdint>
#include <vector>

#include "replacement/policy.hh"

namespace emissary::replacement
{

/**
 * A standalone TPLRU tree over @p ways leaves (ways must be a power
 * of two). Exposed separately so EMISSARY can keep one tree per
 * priority class per set.
 */
class PlruTree
{
  public:
    explicit PlruTree(unsigned ways);

    /** Point every node on the path to @p way away from it. */
    void touch(unsigned way);

    /** Follow the tree to the pseudo-LRU leaf. */
    unsigned victim() const;

    /**
     * Follow the tree to the pseudo-LRU leaf among the ways for which
     * @p eligible returns true, skipping ineligible subtrees (the
     * "skipping any lines that do not match the priority criteria"
     * rule of §4.2). At least one way must be eligible.
     */
    template <typename Pred>
    unsigned
    victimAmong(Pred eligible) const
    {
        unsigned node = 0;
        unsigned lo = 0;
        unsigned hi = ways_;
        while (hi - lo > 1) {
            const unsigned mid = lo + (hi - lo) / 2;
            bool go_right = bits_[node] != 0;
            const bool left_ok = anyEligible(lo, mid, eligible);
            const bool right_ok = anyEligible(mid, hi, eligible);
            if (go_right && !right_ok)
                go_right = false;
            else if (!go_right && !left_ok)
                go_right = true;
            if (go_right) {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        return lo;
    }

    unsigned ways() const { return ways_; }

  private:
    template <typename Pred>
    bool
    anyEligible(unsigned lo, unsigned hi, Pred &eligible) const
    {
        for (unsigned w = lo; w < hi; ++w)
            if (eligible(w))
                return true;
        return false;
    }

    unsigned ways_;
    std::vector<std::uint8_t> bits_;  ///< ways-1 nodes, heap order.
};

/** Plain TPLRU replacement policy (the TPLRU + FDIP baseline).
 *  Sealed: Cache devirtualizes its per-access notifications. */
class TreePlru final : public ReplacementPolicy
{
  public:
    TreePlru(unsigned num_sets, unsigned num_ways,
             std::string label = "TPLRU");

    std::string name() const override { return label_; }
    unsigned selectVictim(unsigned set) override;
    void onInsert(unsigned set, unsigned way,
                  const LineInfo &info) override;
    void onHit(unsigned set, unsigned way, const LineInfo &info) override;
    void onInvalidate(unsigned set, unsigned way) override;

  private:
    std::string label_;
    std::vector<PlruTree> trees_;
};

} // namespace emissary::replacement

#endif // EMISSARY_REPLACEMENT_TPLRU_HH
