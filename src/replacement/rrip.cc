#include "replacement/rrip.hh"

#include <algorithm>
#include <cassert>

namespace emissary::replacement
{

RripPolicy::RripPolicy(unsigned num_sets, unsigned num_ways,
                       RripMode mode, Rational bip_rate,
                       std::uint64_t seed)
    : ReplacementPolicy(num_sets, num_ways),
      mode_(mode),
      bipRate_(bip_rate),
      rng_(seed)
{
    rrpv_.assign(std::size_t{num_sets} * num_ways, kMaxRrpv);
}

std::string
RripPolicy::name() const
{
    switch (mode_) {
      case RripMode::Static:
        return "SRRIP";
      case RripMode::Bimodal:
        return "BRRIP";
      case RripMode::Dynamic:
        return "DRRIP";
    }
    return "RRIP";
}

std::uint8_t &
RripPolicy::rrpvRef(unsigned set, unsigned way)
{
    return rrpv_[std::size_t{set} * ways_ + way];
}

unsigned
RripPolicy::rrpv(unsigned set, unsigned way) const
{
    return rrpv_[std::size_t{set} * ways_ + way];
}

bool
RripPolicy::isSrripLeader(unsigned set) const
{
    // Leader sets are spread through the array: one per stride, with
    // the two policies offset so they never collide.
    const unsigned stride = std::max(1u, sets_ / (2 * kLeaderSets));
    return (set % (2 * stride)) == 0 && set / (2 * stride) < kLeaderSets;
}

bool
RripPolicy::isBrripLeader(unsigned set) const
{
    const unsigned stride = std::max(1u, sets_ / (2 * kLeaderSets));
    return (set % (2 * stride)) == stride &&
           set / (2 * stride) < kLeaderSets;
}

bool
RripPolicy::useBimodalInsert(unsigned set)
{
    switch (mode_) {
      case RripMode::Static:
        return false;
      case RripMode::Bimodal:
        return true;
      case RripMode::Dynamic:
        if (isSrripLeader(set))
            return false;
        if (isBrripLeader(set))
            return true;
        return psel_ > 0;
    }
    return false;
}

unsigned
RripPolicy::selectVictim(unsigned set)
{
    while (true) {
        for (unsigned w = 0; w < ways_; ++w)
            if (rrpvRef(set, w) >= kMaxRrpv)
                return w;
        for (unsigned w = 0; w < ways_; ++w)
            ++rrpvRef(set, w);
    }
}

void
RripPolicy::onInsert(unsigned set, unsigned way, const LineInfo &info)
{
    if (info.insertMru) {
        // SFL victim-cache hint (§5.1): a line evicted from L2 that
        // was previously served from L3 is inserted at MRU.
        rrpvRef(set, way) = 0;
        return;
    }
    if (useBimodalInsert(set)) {
        rrpvRef(set, way) = bipRate_.draw(rng_)
                                ? static_cast<std::uint8_t>(kMaxRrpv - 1)
                                : static_cast<std::uint8_t>(kMaxRrpv);
    } else {
        rrpvRef(set, way) = kMaxRrpv - 1;
    }
}

void
RripPolicy::onHit(unsigned set, unsigned way, const LineInfo &info)
{
    (void)info;
    // Frequency promotion, as the paper describes for its RRIP
    // comparators (§5.5): reused lines step toward the highest
    // priority state rather than jumping there, and once every line
    // in the set has reached it the whole set is reset to a low
    // priority state. With the high L2 hit rates of datacenter code
    // this reset fires often and discards recency information, which
    // is precisely why these policies underperform there.
    std::uint8_t &r = rrpvRef(set, way);
    if (r > 0)
        --r;
    if (r == 0) {
        bool all_zero = true;
        for (unsigned w = 0; w < ways_ && all_zero; ++w)
            all_zero = rrpvRef(set, w) == 0;
        if (all_zero) {
            for (unsigned w = 0; w < ways_; ++w)
                rrpvRef(set, w) = kMaxRrpv - 1;
            r = 0;
        }
    }
}

void
RripPolicy::onInvalidate(unsigned set, unsigned way)
{
    rrpvRef(set, way) = kMaxRrpv;
}

void
RripPolicy::onMiss(unsigned set)
{
    if (mode_ != RripMode::Dynamic)
        return;
    // A miss in an SRRIP leader argues for BRRIP and vice versa.
    if (isSrripLeader(set))
        psel_ = std::min(psel_ + 1, kPselMax);
    else if (isBrripLeader(set))
        psel_ = std::max(psel_ - 1, -kPselMax - 1);
}

} // namespace emissary::replacement
