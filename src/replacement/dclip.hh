/**
 * @file
 * DCLIP — Dynamic Code Line Preservation [28], a Fig. 7 comparator.
 *
 * CLIP prioritizes instruction lines in a shared cache by inserting
 * them at the near-immediate re-reference position (RRPV 0) while
 * data lines get SRRIP insertion. The dynamic variant set-duels CLIP
 * against plain SRRIP and follows whichever produces fewer demand
 * misses, so the code preference only engages when instruction lines
 * actually contend for the L2. Unlike EMISSARY it prioritizes *all*
 * instruction lines blindly, without confirming that a future miss
 * would stall the front-end (paper §7.2).
 */

#ifndef EMISSARY_REPLACEMENT_DCLIP_HH
#define EMISSARY_REPLACEMENT_DCLIP_HH

#include <cstdint>
#include <vector>

#include "replacement/policy.hh"

namespace emissary::replacement
{

/** Dynamic code-line preservation over a 2-bit RRIP substrate. */
class DclipPolicy : public ReplacementPolicy
{
  public:
    DclipPolicy(unsigned num_sets, unsigned num_ways);

    std::string name() const override { return "DCLIP"; }
    unsigned selectVictim(unsigned set) override;
    void onInsert(unsigned set, unsigned way,
                  const LineInfo &info) override;
    void onHit(unsigned set, unsigned way, const LineInfo &info) override;
    void onInvalidate(unsigned set, unsigned way) override;
    void onMiss(unsigned set) override;

    /** True when follower sets currently preserve code lines. */
    bool clipEngaged() const { return psel_ <= 0; }

    /** Leader-set classification, exposed for tests. */
    bool isClipLeaderForTest(unsigned set) const
    {
        return isClipLeader(set);
    }
    bool isSrripLeaderForTest(unsigned set) const
    {
        return isSrripLeader(set);
    }

    static constexpr unsigned kMaxRrpv = 3;
    static constexpr unsigned kLeaderSets = 32;
    static constexpr int kPselMax = 511;

  private:
    bool isClipLeader(unsigned set) const;
    bool isSrripLeader(unsigned set) const;
    bool useClip(unsigned set) const;
    std::uint8_t &rrpvRef(unsigned set, unsigned way);

    std::vector<std::uint8_t> rrpv_;
    std::vector<std::uint8_t> isInst_;
    int psel_ = 0;  ///< <= 0 favours CLIP, > 0 favours SRRIP.
};

} // namespace emissary::replacement

#endif // EMISSARY_REPLACEMENT_DCLIP_HH
