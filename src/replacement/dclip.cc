#include "replacement/dclip.hh"

#include <algorithm>

namespace emissary::replacement
{

DclipPolicy::DclipPolicy(unsigned num_sets, unsigned num_ways)
    : ReplacementPolicy(num_sets, num_ways)
{
    rrpv_.assign(std::size_t{num_sets} * num_ways, kMaxRrpv);
    isInst_.assign(std::size_t{num_sets} * num_ways, 0);
}

std::uint8_t &
DclipPolicy::rrpvRef(unsigned set, unsigned way)
{
    return rrpv_[std::size_t{set} * ways_ + way];
}

bool
DclipPolicy::isClipLeader(unsigned set) const
{
    const unsigned stride = std::max(1u, sets_ / (2 * kLeaderSets));
    return (set % (2 * stride)) == 0 && set / (2 * stride) < kLeaderSets;
}

bool
DclipPolicy::isSrripLeader(unsigned set) const
{
    const unsigned stride = std::max(1u, sets_ / (2 * kLeaderSets));
    return (set % (2 * stride)) == stride &&
           set / (2 * stride) < kLeaderSets;
}

bool
DclipPolicy::useClip(unsigned set) const
{
    if (isClipLeader(set))
        return true;
    if (isSrripLeader(set))
        return false;
    return psel_ <= 0;
}

unsigned
DclipPolicy::selectVictim(unsigned set)
{
    while (true) {
        for (unsigned w = 0; w < ways_; ++w)
            if (rrpvRef(set, w) >= kMaxRrpv)
                return w;
        for (unsigned w = 0; w < ways_; ++w)
            ++rrpvRef(set, w);
    }
}

void
DclipPolicy::onInsert(unsigned set, unsigned way, const LineInfo &info)
{
    isInst_[std::size_t{set} * ways_ + way] = info.isInstruction;
    if (info.insertMru) {
        rrpvRef(set, way) = 0;
        return;
    }
    if (info.isInstruction && useClip(set))
        rrpvRef(set, way) = 0;
    else
        rrpvRef(set, way) = kMaxRrpv - 1;
}

void
DclipPolicy::onHit(unsigned set, unsigned way, const LineInfo &info)
{
    (void)info;
    // Same frequency-promotion substrate as RripPolicy (see there).
    std::uint8_t &r = rrpvRef(set, way);
    if (r > 0)
        --r;
    if (r == 0) {
        bool all_zero = true;
        for (unsigned w = 0; w < ways_ && all_zero; ++w)
            all_zero = rrpvRef(set, w) == 0;
        if (all_zero) {
            for (unsigned w = 0; w < ways_; ++w)
                rrpvRef(set, w) = kMaxRrpv - 1;
            r = 0;
        }
    }
}

void
DclipPolicy::onInvalidate(unsigned set, unsigned way)
{
    rrpvRef(set, way) = kMaxRrpv;
    isInst_[std::size_t{set} * ways_ + way] = 0;
}

void
DclipPolicy::onMiss(unsigned set)
{
    if (isClipLeader(set))
        psel_ = std::min(psel_ + 1, kPselMax);
    else if (isSrripLeader(set))
        psel_ = std::max(psel_ - 1, -kPselMax - 1);
}

} // namespace emissary::replacement
