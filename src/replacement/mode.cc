#include "replacement/mode.hh"

#include <stdexcept>

#include "util/rng.hh"
#include "util/strutil.hh"

namespace emissary::replacement
{

ModeSelector
ModeSelector::parse(const std::string &text)
{
    ModeSelector sel;
    const std::string trimmed = trim(text);
    if (trimmed.empty())
        throw std::invalid_argument("ModeSelector: empty expression");

    if (trimmed == "1")
        return sel;  // default state: always
    if (trimmed == "0") {
        sel.never_ = true;
        return sel;
    }

    for (const std::string &raw : split(trimmed, '&')) {
        const std::string term = trim(raw);
        if (term == "S") {
            if (sel.needS_)
                throw std::invalid_argument(
                    "ModeSelector: duplicate S term");
            sel.needS_ = true;
        } else if (term == "E") {
            if (sel.needE_)
                throw std::invalid_argument(
                    "ModeSelector: duplicate E term");
            sel.needE_ = true;
        } else if (term.size() > 3 && term.substr(0, 2) == "R(" &&
                   term.back() == ')') {
            if (sel.hasR_)
                throw std::invalid_argument(
                    "ModeSelector: duplicate R term");
            sel.hasR_ = true;
            sel.rate_ = Rational::parse(
                term.substr(2, term.size() - 3));
        } else {
            throw std::invalid_argument(
                "ModeSelector: unknown term '" + term + "'");
        }
    }
    return sel;
}

bool
ModeSelector::select(const MissContext &ctx, Rng &rng) const
{
    if (never_)
        return false;
    if (needS_ && !ctx.causedStarvation)
        return false;
    if (needE_ && !ctx.issueQueueEmpty)
        return false;
    if (hasR_ && !rate_.draw(rng))
        return false;
    return true;
}

std::string
ModeSelector::toString() const
{
    if (never_)
        return "0";
    std::string out;
    if (needS_)
        out += "S";
    if (needE_)
        out += out.empty() ? "E" : "&E";
    if (hasR_) {
        if (!out.empty())
            out += "&";
        out += "R(" + rate_.toString() + ")";
    }
    return out.empty() ? "1" : out;
}

bool
ModeSelector::operator==(const ModeSelector &other) const
{
    return never_ == other.never_ && needS_ == other.needS_ &&
           needE_ == other.needE_ && hasR_ == other.hasR_ &&
           (!hasR_ || rate_ == other.rate_);
}

} // namespace emissary::replacement
