#include "replacement/pdp.hh"

#include <cassert>

namespace emissary::replacement
{

PdpPolicy::PdpPolicy(unsigned num_sets, unsigned num_ways,
                     unsigned protecting_distance)
    : ReplacementPolicy(num_sets, num_ways),
      distance_(protecting_distance)
{
    rpd_.assign(std::size_t{num_sets} * num_ways, 0);
}

std::uint16_t &
PdpPolicy::rpd(unsigned set, unsigned way)
{
    return rpd_[std::size_t{set} * ways_ + way];
}

unsigned
PdpPolicy::remaining(unsigned set, unsigned way) const
{
    return rpd_[std::size_t{set} * ways_ + way];
}

void
PdpPolicy::ageSet(unsigned set)
{
    for (unsigned w = 0; w < ways_; ++w) {
        std::uint16_t &r = rpd(set, w);
        if (r > 0)
            --r;
    }
}

unsigned
PdpPolicy::selectVictim(unsigned set)
{
    // Prefer an unprotected line; otherwise the one closest to
    // becoming unprotected.
    unsigned victim = 0;
    std::uint16_t best = rpd(set, 0);
    for (unsigned w = 0; w < ways_; ++w) {
        const std::uint16_t r = rpd(set, w);
        if (r == 0)
            return w;
        if (r < best) {
            best = r;
            victim = w;
        }
    }
    return victim;
}

void
PdpPolicy::onInsert(unsigned set, unsigned way, const LineInfo &info)
{
    (void)info;
    ageSet(set);
    rpd(set, way) = static_cast<std::uint16_t>(distance_);
}

void
PdpPolicy::onHit(unsigned set, unsigned way, const LineInfo &info)
{
    (void)info;
    ageSet(set);
    rpd(set, way) = static_cast<std::uint16_t>(distance_);
}

void
PdpPolicy::onInvalidate(unsigned set, unsigned way)
{
    rpd(set, way) = 0;
}

} // namespace emissary::replacement
