#include "replacement/tplru.hh"

#include <stdexcept>

#include "util/bitutil.hh"

namespace emissary::replacement
{

PlruTree::PlruTree(unsigned ways) : ways_(ways)
{
    if (!isPowerOfTwo(ways) || ways < 2)
        throw std::invalid_argument("PlruTree: ways must be a power of "
                                    "two >= 2");
    bits_.assign(ways - 1, 0);
}

void
PlruTree::touch(unsigned way)
{
    unsigned node = 0;
    unsigned lo = 0;
    unsigned hi = ways_;
    while (hi - lo > 1) {
        const unsigned mid = lo + (hi - lo) / 2;
        if (way < mid) {
            // Touched left half: point the node right.
            bits_[node] = 1;
            node = 2 * node + 1;
            hi = mid;
        } else {
            bits_[node] = 0;
            node = 2 * node + 2;
            lo = mid;
        }
    }
}

unsigned
PlruTree::victim() const
{
    unsigned node = 0;
    unsigned lo = 0;
    unsigned hi = ways_;
    while (hi - lo > 1) {
        const unsigned mid = lo + (hi - lo) / 2;
        if (bits_[node]) {
            node = 2 * node + 2;
            lo = mid;
        } else {
            node = 2 * node + 1;
            hi = mid;
        }
    }
    return lo;
}

TreePlru::TreePlru(unsigned num_sets, unsigned num_ways,
                   std::string label)
    : ReplacementPolicy(num_sets, num_ways), label_(std::move(label))
{
    trees_.assign(num_sets, PlruTree(num_ways));
}

unsigned
TreePlru::selectVictim(unsigned set)
{
    return trees_[set].victim();
}

void
TreePlru::onInsert(unsigned set, unsigned way, const LineInfo &info)
{
    (void)info;
    trees_[set].touch(way);
}

void
TreePlru::onHit(unsigned set, unsigned way, const LineInfo &info)
{
    (void)info;
    trees_[set].touch(way);
}

void
TreePlru::onInvalidate(unsigned set, unsigned way)
{
    (void)set;
    (void)way;
    // Invalid ways are re-filled before the tree is consulted again
    // (the cache prefers invalid ways), so no state change is needed.
}

} // namespace emissary::replacement
