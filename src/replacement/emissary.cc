#include "replacement/emissary.hh"

#include <cassert>
#include <limits>

namespace emissary::replacement
{

EmissaryPolicy::EmissaryPolicy(unsigned num_sets, unsigned num_ways,
                               unsigned max_protected, bool tree_plru,
                               std::string label)
    : ReplacementPolicy(num_sets, num_ways),
      label_(std::move(label)),
      maxProtected_(max_protected),
      treePlru_(tree_plru)
{
    priority_.assign(std::size_t{num_sets} * num_ways, 0);
    highCount_.assign(num_sets, 0);
    if (treePlru_) {
        lowTrees_.assign(num_sets, PlruTree(num_ways));
        highTrees_.assign(num_sets, PlruTree(num_ways));
    } else {
        stamps_.assign(std::size_t{num_sets} * num_ways,
                       std::numeric_limits<std::int64_t>::min() / 2);
    }
}

std::uint8_t &
EmissaryPolicy::prio(unsigned set, unsigned way)
{
    return priority_[std::size_t{set} * ways_ + way];
}

bool
EmissaryPolicy::linePriority(unsigned set, unsigned way) const
{
    return priority_[std::size_t{set} * ways_ + way] != 0;
}

unsigned
EmissaryPolicy::protectedCount(unsigned set) const
{
    return highCount_[set];
}

unsigned
EmissaryPolicy::victimTrueLru(unsigned set, bool among_high) const
{
    unsigned victim = ways_;
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (unsigned w = 0; w < ways_; ++w) {
        if (linePriority(set, w) != among_high)
            continue;
        const std::int64_t s = stamps_[std::size_t{set} * ways_ + w];
        if (s < best) {
            best = s;
            victim = w;
        }
    }
    assert(victim < ways_ && "no line in requested priority class");
    return victim;
}

unsigned
EmissaryPolicy::victimTree(unsigned set, bool among_high)
{
    PlruTree &tree = among_high ? highTrees_[set] : lowTrees_[set];
    return tree.victimAmong([this, set, among_high](unsigned w) {
        return linePriority(set, w) == among_high;
    });
}

unsigned
EmissaryPolicy::selectVictim(unsigned set)
{
    // Algorithm 1: protect up to N high-priority lines. When the set
    // holds no more than N high-priority lines, the victim comes from
    // the low-priority class; otherwise from the high-priority class.
    const unsigned high = highCount_[set];
    bool among_high = high > maxProtected_;
    if (!among_high && high == ways_) {
        // Degenerate guard: every line is high-priority (only
        // possible when N >= ways); fall back to the high class.
        among_high = true;
    }
    if (treePlru_)
        return victimTree(set, among_high);
    return victimTrueLru(set, among_high);
}

void
EmissaryPolicy::onInsert(unsigned set, unsigned way,
                         const LineInfo &info)
{
    std::uint8_t &p = prio(set, way);
    assert(!p && "cache must invalidate a way before re-filling it");
    p = info.highPriority ? 1 : 0;
    if (p)
        ++highCount_[set];

    if (treePlru_) {
        (p ? highTrees_[set] : lowTrees_[set]).touch(way);
    } else {
        stamps_[std::size_t{set} * ways_ + way] = ++clock_;
    }
}

void
EmissaryPolicy::onHit(unsigned set, unsigned way, const LineInfo &info)
{
    (void)info;
    // Only the tree matching the line's priority class is updated
    // (§4.2): a hit on a high-priority line must not disturb the
    // low-priority recency order, and vice versa.
    if (treePlru_) {
        (linePriority(set, way) ? highTrees_[set] : lowTrees_[set])
            .touch(way);
    } else {
        stamps_[std::size_t{set} * ways_ + way] = ++clock_;
    }
}

void
EmissaryPolicy::onInvalidate(unsigned set, unsigned way)
{
    std::uint8_t &p = prio(set, way);
    if (p) {
        assert(highCount_[set] > 0);
        --highCount_[set];
    }
    p = 0;
    if (!treePlru_) {
        stamps_[std::size_t{set} * ways_ + way] =
            std::numeric_limits<std::int64_t>::min() / 2;
    }
}

bool
EmissaryPolicy::setPriority(unsigned set, unsigned way, bool high)
{
    std::uint8_t &p = prio(set, way);
    if ((p != 0) == high)
        return true;
    // Priority is sticky for a line's lifetime: it can be raised (an
    // L1I eviction communicating starvation history) but is only
    // cleared by invalidation or the global reset. Upgrades are
    // refused once the set already protects N lines: the protected
    // population per set never exceeds N (Fig. 8 shows occupancies
    // of 0..N only), which also keeps an oversubscribed set from
    // churning its own protected lines.
    if (high) {
        if (highCount_[set] >= maxProtected_)
            return false;
        p = 1;
        ++highCount_[set];
        if (treePlru_) {
            // The line now belongs to the high-priority class; mark
            // it most-recently-used there so it is not immediately
            // chosen when the class overflows.
            highTrees_[set].touch(way);
        }
    }
    return true;
}

void
EmissaryPolicy::resetPriorities()
{
    std::fill(priority_.begin(), priority_.end(), 0);
    std::fill(highCount_.begin(), highCount_.end(), 0);
}

} // namespace emissary::replacement
