/**
 * @file
 * Bimodal mode selection (paper §4.1, Table 1).
 *
 * A ModeSelector evaluates the Boolean conjunction of the paper's
 * selection signals over the context of a finished miss:
 *
 *   1      always high-priority
 *   0      never high-priority
 *   S      the miss caused decode starvation
 *   E      the issue queue was empty during the starvation
 *   R(r)   pseudo-random selection with probability r
 *
 * e.g. "S&E&R(1/32)" requires starvation AND an empty issue queue AND
 * winning a 1-in-32 draw.
 */

#ifndef EMISSARY_REPLACEMENT_MODE_HH
#define EMISSARY_REPLACEMENT_MODE_HH

#include <string>

#include "util/rational.hh"

namespace emissary
{
class Rng;
}

namespace emissary::replacement
{

/** Everything known about a miss when its fill is inserted. */
struct MissContext
{
    /** Line holds instructions. */
    bool isInstruction = false;

    /** Decode starved while this miss was outstanding (signal S). */
    bool causedStarvation = false;

    /** Issue queue was empty during that starvation (signal E). */
    bool issueQueueEmpty = false;
};

/** A parsed mode-selection expression. */
class ModeSelector
{
  public:
    /** Default: the constant 1 (always high-priority). */
    ModeSelector() = default;

    /**
     * Parse the paper notation: "1", "0", or a '&'-joined conjunction
     * of "S", "E" and "R(a/b)" in any order.
     * @throws std::invalid_argument on malformed input.
     */
    static ModeSelector parse(const std::string &text);

    /** Evaluate the expression for a finished miss. */
    bool select(const MissContext &ctx, Rng &rng) const;

    /** True when the expression references the starvation signal. */
    bool usesStarvation() const { return needS_; }

    /** True when the expression references the IQ-empty signal. */
    bool usesIssueQueue() const { return needE_; }

    /** True when a random filter R(r) is present. */
    bool usesRandom() const { return hasR_; }

    /** The R(r) probability; meaningful only when usesRandom(). */
    const Rational &randomRate() const { return rate_; }

    /** Render back to paper notation. */
    std::string toString() const;

    bool operator==(const ModeSelector &other) const;

  private:
    bool never_ = false;
    bool needS_ = false;
    bool needE_ = false;
    bool hasR_ = false;
    Rational rate_;
};

} // namespace emissary::replacement

#endif // EMISSARY_REPLACEMENT_MODE_HH
