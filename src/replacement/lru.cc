#include "replacement/lru.hh"

#include <algorithm>
#include <cassert>
#include <limits>

namespace emissary::replacement
{

InsertionLru::InsertionLru(unsigned num_sets, unsigned num_ways,
                           std::string label)
    : ReplacementPolicy(num_sets, num_ways), label_(std::move(label))
{
    stamps_.assign(std::size_t{num_sets} * num_ways,
                   std::numeric_limits<std::int64_t>::min() / 2);
}

std::int64_t &
InsertionLru::stamp(unsigned set, unsigned way)
{
    return stamps_[std::size_t{set} * ways_ + way];
}

const std::int64_t &
InsertionLru::stamp(unsigned set, unsigned way) const
{
    return stamps_[std::size_t{set} * ways_ + way];
}

unsigned
InsertionLru::selectVictim(unsigned set)
{
    unsigned victim = 0;
    std::int64_t best = stamp(set, 0);
    for (unsigned w = 1; w < ways_; ++w) {
        if (stamp(set, w) < best) {
            best = stamp(set, w);
            victim = w;
        }
    }
    return victim;
}

void
InsertionLru::onInsert(unsigned set, unsigned way, const LineInfo &info)
{
    if (info.highPriority || info.insertMru) {
        stamp(set, way) = ++clock_;
        return;
    }
    // LRU-position insert: strictly older than everything resident.
    std::int64_t oldest = std::numeric_limits<std::int64_t>::max();
    for (unsigned w = 0; w < ways_; ++w)
        oldest = std::min(oldest, stamp(set, w));
    stamp(set, way) = oldest - 1;
}

void
InsertionLru::onHit(unsigned set, unsigned way, const LineInfo &info)
{
    (void)info;
    stamp(set, way) = ++clock_;
}

void
InsertionLru::onInvalidate(unsigned set, unsigned way)
{
    stamp(set, way) = std::numeric_limits<std::int64_t>::min() / 2;
}

unsigned
InsertionLru::recencyRank(unsigned set, unsigned way) const
{
    unsigned rank = 0;
    for (unsigned w = 0; w < ways_; ++w)
        if (w != way && stamp(set, w) < stamp(set, way))
            ++rank;
    return rank;
}

} // namespace emissary::replacement
