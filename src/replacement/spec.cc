#include "replacement/spec.hh"

#include <stdexcept>

#include "replacement/dclip.hh"
#include "replacement/emissary.hh"
#include "replacement/lru.hh"
#include "replacement/pdp.hh"
#include "replacement/rrip.hh"
#include "replacement/tplru.hh"
#include "util/strutil.hh"

namespace emissary::replacement
{

PolicySpec
PolicySpec::parse(const std::string &text)
{
    const std::string t = trim(text);
    PolicySpec spec;

    if (t == "LRU") {
        spec.family = PolicyFamily::InsertionLru;
        spec.selector = ModeSelector::parse("1");
        return spec;
    }
    if (t == "LIP") {
        spec.family = PolicyFamily::InsertionLru;
        spec.selector = ModeSelector::parse("0");
        return spec;
    }
    if (t == "BIP") {
        spec.family = PolicyFamily::InsertionLru;
        spec.selector = ModeSelector::parse("R(1/32)");
        return spec;
    }
    if (t == "TPLRU") {
        spec.family = PolicyFamily::TreePlru;
        return spec;
    }
    if (t == "EMISSARY") {
        // Convenience alias for the paper's headline configuration,
        // P(8):S&E&R(1/32) (Table 3 / Fig. 7 best variant).
        spec.family = PolicyFamily::EmissaryP;
        spec.protectN = 8;
        spec.selector = ModeSelector::parse("S&E&R(1/32)");
        return spec;
    }
    if (t == "SRRIP") {
        spec.family = PolicyFamily::Srrip;
        return spec;
    }
    if (t == "BRRIP") {
        spec.family = PolicyFamily::Brrip;
        return spec;
    }
    if (t == "DRRIP") {
        spec.family = PolicyFamily::Drrip;
        return spec;
    }
    if (t == "PDP") {
        spec.family = PolicyFamily::Pdp;
        return spec;
    }
    if (t == "DCLIP") {
        spec.family = PolicyFamily::Dclip;
        return spec;
    }

    const auto colon = t.find(':');
    if (colon == std::string::npos)
        throw std::invalid_argument("PolicySpec: cannot parse '" + t +
                                    "'");
    const std::string treatment = trim(t.substr(0, colon));
    const std::string selection = trim(t.substr(colon + 1));

    if (treatment == "M") {
        spec.family = PolicyFamily::InsertionLru;
        spec.selector = ModeSelector::parse(selection);
        return spec;
    }
    if (treatment.size() > 3 && treatment.substr(0, 2) == "P(" &&
        treatment.back() == ')') {
        spec.family = PolicyFamily::EmissaryP;
        const std::string n_text =
            treatment.substr(2, treatment.size() - 3);
        try {
            spec.protectN =
                static_cast<unsigned>(std::stoul(n_text));
        } catch (const std::logic_error &) {
            throw std::invalid_argument(
                "PolicySpec: bad protect count '" + n_text + "'");
        }
        spec.selector = ModeSelector::parse(selection);
        return spec;
    }
    throw std::invalid_argument("PolicySpec: unknown treatment '" +
                                treatment + "'");
}

std::string
PolicySpec::toString() const
{
    switch (family) {
      case PolicyFamily::InsertionLru:
        return "M:" + selector.toString();
      case PolicyFamily::TreePlru:
        return "TPLRU";
      case PolicyFamily::EmissaryP:
        return "P(" + std::to_string(protectN) + "):" +
               selector.toString();
      case PolicyFamily::Srrip:
        return "SRRIP";
      case PolicyFamily::Brrip:
        return "BRRIP";
      case PolicyFamily::Drrip:
        return "DRRIP";
      case PolicyFamily::Pdp:
        return "PDP";
      case PolicyFamily::Dclip:
        return "DCLIP";
    }
    return "?";
}

bool
PolicySpec::usesStarvation() const
{
    if (family != PolicyFamily::InsertionLru &&
        family != PolicyFamily::EmissaryP)
        return false;
    return selector.usesStarvation() || selector.usesIssueQueue();
}

bool
PolicySpec::computePriority(const MissContext &ctx, Rng &rng) const
{
    switch (family) {
      case PolicyFamily::InsertionLru:
        // Bimodal selection is instruction-scoped (§2): data lines
        // keep the conventional MRU insertion.
        if (!ctx.isInstruction)
            return true;
        return selector.select(ctx, rng);
      case PolicyFamily::EmissaryP:
        if (!ctx.isInstruction)
            return false;
        return selector.select(ctx, rng);
      default:
        return false;
    }
}

std::unique_ptr<ReplacementPolicy>
makePolicy(const PolicySpec &spec, unsigned num_sets, unsigned num_ways,
           std::uint64_t seed)
{
    switch (spec.family) {
      case PolicyFamily::InsertionLru:
        return std::make_unique<InsertionLru>(num_sets, num_ways,
                                              spec.toString());
      case PolicyFamily::TreePlru:
        return std::make_unique<TreePlru>(num_sets, num_ways);
      case PolicyFamily::EmissaryP:
        return std::make_unique<EmissaryPolicy>(
            num_sets, num_ways, spec.protectN, spec.emissaryTreePlru,
            spec.toString());
      case PolicyFamily::Srrip:
        return std::make_unique<RripPolicy>(num_sets, num_ways,
                                            RripMode::Static,
                                            Rational(1, 32), seed);
      case PolicyFamily::Brrip:
        return std::make_unique<RripPolicy>(num_sets, num_ways,
                                            RripMode::Bimodal,
                                            Rational(1, 32), seed);
      case PolicyFamily::Drrip:
        return std::make_unique<RripPolicy>(num_sets, num_ways,
                                            RripMode::Dynamic,
                                            Rational(1, 32), seed);
      case PolicyFamily::Pdp:
        return std::make_unique<PdpPolicy>(num_sets, num_ways,
                                           spec.pdpDistance);
      case PolicyFamily::Dclip:
        return std::make_unique<DclipPolicy>(num_sets, num_ways);
    }
    throw std::logic_error("makePolicy: unreachable family");
}

std::vector<std::string>
figure7PolicyNames()
{
    return {
        "M:0",          "DCLIP",          "SRRIP",
        "BRRIP",        "DRRIP",          "PDP",
        "M:R(1/32)",    "M:S&E",          "M:S&E&R(1/32)",
        "P(8):R(1/32)", "P(8):S&E",       "P(8):S&E&R(1/32)",
    };
}

} // namespace emissary::replacement
