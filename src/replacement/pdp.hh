/**
 * @file
 * Static Protecting-Distance Policy (PDP) [20], a Fig. 7 comparator.
 *
 * Each line is protected for PD set-accesses after its last touch: a
 * per-line saturating counter is set to PD on insert and on hit and
 * decremented on every access to the set. Victims are chosen among
 * unprotected lines (counter == 0); when every line is protected the
 * line closest to expiry is evicted (the cache is inclusive, so the
 * original policy's bypass option is not available).
 */

#ifndef EMISSARY_REPLACEMENT_PDP_HH
#define EMISSARY_REPLACEMENT_PDP_HH

#include <cstdint>
#include <vector>

#include "replacement/policy.hh"

namespace emissary::replacement
{

/** Static protecting-distance replacement. */
class PdpPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param num_sets Number of sets.
     * @param num_ways Associativity.
     * @param protecting_distance PD in set-accesses; the paper's
     *        static variant uses a fixed distance (default 64, i.e.
     *        4x the associativity of the evaluated L2).
     */
    PdpPolicy(unsigned num_sets, unsigned num_ways,
              unsigned protecting_distance = 64);

    std::string name() const override { return "PDP"; }
    unsigned selectVictim(unsigned set) override;
    void onInsert(unsigned set, unsigned way,
                  const LineInfo &info) override;
    void onHit(unsigned set, unsigned way, const LineInfo &info) override;
    void onInvalidate(unsigned set, unsigned way) override;

    /** Remaining protecting distance of a line, for tests. */
    unsigned remaining(unsigned set, unsigned way) const;

  private:
    void ageSet(unsigned set);
    std::uint16_t &rpd(unsigned set, unsigned way);

    unsigned distance_;
    std::vector<std::uint16_t> rpd_;
};

} // namespace emissary::replacement

#endif // EMISSARY_REPLACEMENT_PDP_HH
