/**
 * @file
 * Replacement-policy interface shared by every cache level.
 *
 * The cache owns tag/valid/dirty state; the policy owns whatever
 * recency/priority metadata it needs, kept in sync through the
 * onInsert / onHit / onInvalidate / setPriority notifications. The
 * EMISSARY-specific hooks (setPriority, protectedCount,
 * resetPriorities) have no-op defaults so conventional policies
 * ignore them.
 */

#ifndef EMISSARY_REPLACEMENT_POLICY_HH
#define EMISSARY_REPLACEMENT_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>

namespace emissary::replacement
{

/** Insertion/hit context a policy may act on. */
struct LineInfo
{
    /** Line holds instructions (vs data); drives DCLIP and the
     *  instruction-only scope of bimodal selection (§2). */
    bool isInstruction = false;

    /** Mode-selection outcome: high-priority under the paper's
     *  notation. For M: policies this means "insert at MRU"; for
     *  P(N) policies it is the sticky priority bit P. */
    bool highPriority = false;

    /** Victim-cache hint: insert at MRU regardless of policy (the
     *  SFL mechanism for L2->L3 evictions, §5.1). */
    bool insertMru = false;
};

/** Abstract replacement policy for one set-associative array. */
class ReplacementPolicy
{
  public:
    ReplacementPolicy(unsigned num_sets, unsigned num_ways)
        : sets_(num_sets), ways_(num_ways)
    {}

    virtual ~ReplacementPolicy() = default;

    /** Short name for reports (e.g. "P(8):S&E&R(1/32)"). */
    virtual std::string name() const = 0;

    /**
     * Choose the victim way in a full set.
     * @param set Set index; every way is valid when this is called.
     * @return Way index to evict.
     */
    virtual unsigned selectVictim(unsigned set) = 0;

    /** Notify a fill into (set, way). */
    virtual void onInsert(unsigned set, unsigned way,
                          const LineInfo &info) = 0;

    /** Notify a hit on (set, way). */
    virtual void onHit(unsigned set, unsigned way,
                       const LineInfo &info) = 0;

    /** Notify that (set, way) was invalidated (back-invalidation,
     *  exclusive-hierarchy promotion, ...). */
    virtual void onInvalidate(unsigned set, unsigned way) = 0;

    /** Demand-miss feedback for set-dueling policies (DRRIP, DCLIP). */
    virtual void
    onMiss(unsigned set)
    {
        (void)set;
    }

    /**
     * EMISSARY: update the sticky priority bit of a resident line
     * (e.g. when an L1I eviction communicates starvation history to
     * the L2 copy, §3).
     *
     * @return True when the update was accepted. EMISSARY refuses
     *         upgrades once a set already protects its full quota of
     *         N lines — consistent with the paper's Fig. 8, whose
     *         per-set occupancy never exceeds N.
     */
    virtual bool
    setPriority(unsigned set, unsigned way, bool high)
    {
        (void)set;
        (void)way;
        (void)high;
        return true;
    }

    /** EMISSARY: current number of high-priority lines in @p set. */
    virtual unsigned
    protectedCount(unsigned set) const
    {
        (void)set;
        return 0;
    }

    /** EMISSARY: clear every priority bit (§6 reset mechanism). */
    virtual void resetPriorities() {}

    unsigned numSets() const { return sets_; }
    unsigned numWays() const { return ways_; }

  protected:
    unsigned sets_;
    unsigned ways_;
};

} // namespace emissary::replacement

#endif // EMISSARY_REPLACEMENT_POLICY_HH
