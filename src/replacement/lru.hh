/**
 * @file
 * True-LRU based policies: classic LRU and the bimodal insertion
 * family M:<sel> covering LRU (M:1), LIP (M:0), BIP (M:R(1/32)) and
 * the starvation-aware insertion variants M:S&E, M:S&E&R(r) from the
 * paper (§4.2, treatment option M).
 */

#ifndef EMISSARY_REPLACEMENT_LRU_HH
#define EMISSARY_REPLACEMENT_LRU_HH

#include <cstdint>
#include <vector>

#include "replacement/policy.hh"

namespace emissary::replacement
{

/**
 * Bimodal-insertion true LRU.
 *
 * Hits always promote to MRU. Insertions go to MRU when the line was
 * selected high-priority (LineInfo::highPriority) and to LRU
 * otherwise; with the Always selector this is classic LRU, with the
 * Never selector it is LIP, with R(1/32) it is BIP [49].
 */
class InsertionLru : public ReplacementPolicy
{
  public:
    /**
     * @param num_sets Number of sets.
     * @param num_ways Associativity.
     * @param label Report name (e.g. "M:R(1/32)").
     */
    InsertionLru(unsigned num_sets, unsigned num_ways,
                 std::string label = "M:1");

    std::string name() const override { return label_; }
    unsigned selectVictim(unsigned set) override;
    void onInsert(unsigned set, unsigned way,
                  const LineInfo &info) override;
    void onHit(unsigned set, unsigned way, const LineInfo &info) override;
    void onInvalidate(unsigned set, unsigned way) override;

    /** Recency rank of a way: 0 = LRU ... ways-1 = MRU (testing). */
    unsigned recencyRank(unsigned set, unsigned way) const;

  private:
    std::int64_t &stamp(unsigned set, unsigned way);
    const std::int64_t &stamp(unsigned set, unsigned way) const;

    std::string label_;
    std::vector<std::int64_t> stamps_;
    std::int64_t clock_ = 0;
};

} // namespace emissary::replacement

#endif // EMISSARY_REPLACEMENT_LRU_HH
