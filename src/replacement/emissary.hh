/**
 * @file
 * The EMISSARY P(N) replacement policy (paper §4.2, Algorithm 1).
 *
 * Each line carries a sticky priority bit P. On eviction:
 *
 *   if (number of P=1 lines in the set <= N)
 *       evict the LRU among the P=0 lines
 *   else
 *       evict the LRU among the P=1 lines
 *
 * so up to N MRU high-priority lines per set are protected from
 * eviction by low-priority insertions, for their entire lifetime in
 * the cache — the paper's "persistent bimodality". The LRU ordering
 * inside each priority class comes either from true LRU stamps (used
 * by the §2 overview experiments) or from two Tree-PLRU trees per
 * set, one per priority class (used by the paper's evaluation).
 */

#ifndef EMISSARY_REPLACEMENT_EMISSARY_HH
#define EMISSARY_REPLACEMENT_EMISSARY_HH

#include <cstdint>
#include <vector>

#include "replacement/policy.hh"
#include "replacement/tplru.hh"

namespace emissary::replacement
{

/** EMISSARY bimodal treatment P(N).
 *  Sealed: Cache devirtualizes its per-access notifications. */
class EmissaryPolicy final : public ReplacementPolicy
{
  public:
    /**
     * @param num_sets Number of sets.
     * @param num_ways Associativity.
     * @param max_protected The N of P(N): protect up to N MRU
     *        high-priority lines per set.
     * @param tree_plru Use the dual-tree TPLRU implementation (the
     *        evaluation configuration); false selects true LRU.
     * @param label Report name (e.g. "P(8):S&E&R(1/32)").
     */
    EmissaryPolicy(unsigned num_sets, unsigned num_ways,
                   unsigned max_protected, bool tree_plru,
                   std::string label);

    std::string name() const override { return label_; }
    unsigned selectVictim(unsigned set) override;
    void onInsert(unsigned set, unsigned way,
                  const LineInfo &info) override;
    void onHit(unsigned set, unsigned way, const LineInfo &info) override;
    void onInvalidate(unsigned set, unsigned way) override;
    bool setPriority(unsigned set, unsigned way, bool high) override;
    unsigned protectedCount(unsigned set) const override;
    void resetPriorities() override;

    /** The N parameter of P(N). */
    unsigned maxProtected() const { return maxProtected_; }

    /** Priority bit of a resident line (testing/inspection). */
    bool linePriority(unsigned set, unsigned way) const;

    /**
     * Per-set P=1 line counts, maintained incrementally on
     * insert/invalidate/upgrade. The interval sampler's Fig. 8
     * occupancy probe reads this directly (O(sets)) instead of
     * scanning every line in the array.
     */
    const std::vector<std::uint16_t> &
    protectedCounts() const
    {
        return highCount_;
    }

  private:
    std::uint8_t &prio(unsigned set, unsigned way);
    unsigned victimTrueLru(unsigned set, bool among_high) const;
    unsigned victimTree(unsigned set, bool among_high);

    std::string label_;
    unsigned maxProtected_;
    bool treePlru_;

    /** Per-line priority bits (policy-side copy, kept in sync with
     *  the cache's line state via onInsert/setPriority). */
    std::vector<std::uint8_t> priority_;
    /** Cached count of P=1 lines per set. */
    std::vector<std::uint16_t> highCount_;

    // True-LRU implementation state.
    std::vector<std::int64_t> stamps_;
    std::int64_t clock_ = 0;

    // Dual-tree TPLRU implementation state (one pair per set).
    std::vector<PlruTree> lowTrees_;
    std::vector<PlruTree> highTrees_;
};

} // namespace emissary::replacement

#endif // EMISSARY_REPLACEMENT_EMISSARY_HH
