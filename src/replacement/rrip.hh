/**
 * @file
 * Re-reference interval prediction policies [29]: SRRIP, BRRIP, and
 * the set-dueling dynamic DRRIP, used as comparators in the paper's
 * Fig. 7 and as the L3 policy of the Alderlake-like model (Table 4).
 */

#ifndef EMISSARY_REPLACEMENT_RRIP_HH
#define EMISSARY_REPLACEMENT_RRIP_HH

#include <cstdint>
#include <vector>

#include "replacement/policy.hh"
#include "util/rational.hh"
#include "util/rng.hh"

namespace emissary::replacement
{

/** Which insertion rule an RRIP array uses. */
enum class RripMode : std::uint8_t
{
    Static,   ///< SRRIP: insert at RRPV = max-1.
    Bimodal,  ///< BRRIP: insert at max, at max-1 with probability r.
    Dynamic,  ///< DRRIP: set-dueling between the two above.
};

/**
 * M-bit RRIP replacement (M = 2 as in the paper's comparators).
 *
 * Hits promote to RRPV 0 (hit-promotion variant). The victim is the
 * leftmost way at max RRPV, aging every way up when none is there.
 * DRRIP dedicates 32 leader sets to each of SRRIP and BRRIP and
 * steers follower sets with a 10-bit PSEL counter updated on leader
 * demand misses.
 */
class RripPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param num_sets Number of sets.
     * @param num_ways Associativity.
     * @param mode Static, Bimodal or Dynamic insertion.
     * @param bip_rate The BRRIP long-insertion probability.
     * @param seed RNG seed for the bimodal draw.
     */
    RripPolicy(unsigned num_sets, unsigned num_ways, RripMode mode,
               Rational bip_rate = Rational(1, 32),
               std::uint64_t seed = 0x5EED00B1ULL);

    std::string name() const override;
    unsigned selectVictim(unsigned set) override;
    void onInsert(unsigned set, unsigned way,
                  const LineInfo &info) override;
    void onHit(unsigned set, unsigned way, const LineInfo &info) override;
    void onInvalidate(unsigned set, unsigned way) override;
    void onMiss(unsigned set) override;

    /** RRPV of a line, for tests. */
    unsigned rrpv(unsigned set, unsigned way) const;

    /** Leader-set classification, for tests. */
    bool isSrripLeader(unsigned set) const;
    bool isBrripLeader(unsigned set) const;

    static constexpr unsigned kMaxRrpv = 3;     ///< 2-bit RRPV.
    static constexpr unsigned kLeaderSets = 32; ///< Per policy.
    static constexpr int kPselMax = 511;        ///< 10-bit saturating.

  protected:
    /** True when @p set should use bimodal (BRRIP-style) insertion. */
    bool useBimodalInsert(unsigned set);

    std::uint8_t &rrpvRef(unsigned set, unsigned way);

    RripMode mode_;
    Rational bipRate_;
    Rng rng_;
    std::vector<std::uint8_t> rrpv_;
    int psel_ = 0;  ///< > 0 favours BRRIP, <= 0 favours SRRIP.
};

} // namespace emissary::replacement

#endif // EMISSARY_REPLACEMENT_RRIP_HH
