/**
 * @file
 * McPAT-style analytic energy model (paper §5.9).
 *
 * Energy = core dynamic energy-per-instruction x instructions
 *        + per-access dynamic energy for every cache level and DRAM
 *        + whole-core leakage power x wall-clock time.
 *
 * The paper reports energy savings "strongly correlated with the
 * speedups achieved because of the relatively small amount of
 * hardware added"; this model has the same structure: faster runs
 * save leakage, and fewer L3/DRAM trips save dynamic energy. The two
 * EMISSARY metadata bits per line are charged as a small per-access
 * adder on L1I and L2.
 */

#ifndef EMISSARY_ENERGY_MODEL_HH
#define EMISSARY_ENERGY_MODEL_HH

#include <cstdint>

#include "cache/hierarchy.hh"

namespace emissary::energy
{

/** Energy/power parameters (defaults sized for a 3 GHz big core). */
struct EnergyParams
{
    double l1iAccessNj = 0.010;  ///< 32 kB, 8-way read.
    double l1dAccessNj = 0.016;  ///< 64 kB, 8-way read.
    double l2AccessNj = 0.060;   ///< 1 MB, 16-way read.
    double l3AccessNj = 0.140;   ///< 2 MB, 16-way read.
    double dramAccessNj = 15.0;  ///< Per 64 B line transfer.
    double coreEpiNj = 0.35;     ///< Core dynamic nJ per instruction.
    double leakageWatts = 1.5;   ///< Whole core + caches static.
    double frequencyGhz = 3.0;
    /** Per-access overhead of the two EMISSARY bits per line (priority
     *  + TPLRU), charged on L1I and L2 accesses. */
    double emissaryBitNj = 0.0002;
};

/** Breakdown of one run's modelled energy. */
struct EnergyBreakdown
{
    double coreDynamicJ = 0.0;
    double cacheDynamicJ = 0.0;
    double dramJ = 0.0;
    double leakageJ = 0.0;

    double total() const
    {
        return coreDynamicJ + cacheDynamicJ + dramJ + leakageJ;
    }
};

/**
 * Compute modelled energy for one measurement window.
 *
 * @param stats Hierarchy access counts for the window.
 * @param cycles Window cycles.
 * @param instructions Committed instructions in the window.
 * @param emissary_bits Charge the EMISSARY metadata-bit overhead.
 * @param params Technology parameters.
 */
EnergyBreakdown
computeEnergy(const cache::HierarchyStats &stats, std::uint64_t cycles,
              std::uint64_t instructions, bool emissary_bits,
              const EnergyParams &params = EnergyParams());

} // namespace emissary::energy

#endif // EMISSARY_ENERGY_MODEL_HH
