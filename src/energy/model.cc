#include "energy/model.hh"

namespace emissary::energy
{

EnergyBreakdown
computeEnergy(const cache::HierarchyStats &stats, std::uint64_t cycles,
              std::uint64_t instructions, bool emissary_bits,
              const EnergyParams &params)
{
    EnergyBreakdown out;
    const double nj = 1e-9;

    out.coreDynamicJ =
        static_cast<double>(instructions) * params.coreEpiNj * nj;

    double cache_nj = 0.0;
    cache_nj += static_cast<double>(stats.l1iAccesses) *
                params.l1iAccessNj;
    cache_nj += static_cast<double>(stats.l1dAccesses) *
                params.l1dAccessNj;
    cache_nj += static_cast<double>(stats.l2InstAccesses +
                                    stats.l2DataAccesses) *
                params.l2AccessNj;
    cache_nj += static_cast<double>(stats.l3Accesses) *
                params.l3AccessNj;
    if (emissary_bits) {
        cache_nj += static_cast<double>(stats.l1iAccesses +
                                        stats.l2InstAccesses +
                                        stats.l2DataAccesses) *
                    params.emissaryBitNj;
    }
    out.cacheDynamicJ = cache_nj * nj;

    out.dramJ = static_cast<double>(stats.dramReads +
                                    stats.dramWrites) *
                params.dramAccessNj * nj;

    const double seconds = static_cast<double>(cycles) /
                           (params.frequencyGhz * 1e9);
    out.leakageJ = params.leakageWatts * seconds;
    return out;
}

} // namespace emissary::energy
