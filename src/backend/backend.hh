/**
 * @file
 * The modelled out-of-order back-end (Table 4: 8-wide, ROB 512,
 * IQ 240, LQ 128 / SQ 72).
 *
 * The model is deliberately simple where EMISSARY is insensitive and
 * faithful where it matters: in-order decode/dispatch from the
 * decode queue, latency-based execution with a light pseudo-
 * dependence chain (so load latency propagates to consumers),
 * in-order commit, and precise generation of the three signals the
 * paper's mechanism consumes — decode starvation, the issue-queue-
 * empty condition, and mispredicted-branch resolution times.
 */

#ifndef EMISSARY_BACKEND_BACKEND_HH
#define EMISSARY_BACKEND_BACKEND_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/inst.hh"

namespace emissary::backend
{

/** Back-end statistics for one measurement window. */
struct BackendStats
{
    std::uint64_t committed = 0;
    std::uint64_t issued = 0;
    std::uint64_t cycles = 0;
    /** Cycles where nothing committed and the ROB was empty. */
    std::uint64_t feStallCycles = 0;
    /** Cycles where nothing committed with a non-empty ROB. */
    std::uint64_t beStallCycles = 0;
    /** Cycles where decode wanted instructions but the queue was
     *  empty while a line fill was outstanding (signal S scope). */
    std::uint64_t starvationCycles = 0;
    /** Subset of starvationCycles with an empty issue queue (S&E). */
    std::uint64_t starvationIqEmptyCycles = 0;
    /** Decode-empty cycles with no line to blame (re-steer shadow). */
    std::uint64_t resteerEmptyCycles = 0;
    /** Cycles decode moved at least one instruction. */
    std::uint64_t decodeActiveCycles = 0;
    /** Cycles at least one instruction completed execution. */
    std::uint64_t issueActiveCycles = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branchesResolved = 0;

    void reset() { *this = BackendStats{}; }

    /** Component-wise sum — the time-parallel chunk splice
     *  (core::runPolicyTimeParallel) adds window slices. */
    BackendStats &
    operator+=(const BackendStats &other)
    {
        committed += other.committed;
        issued += other.issued;
        cycles += other.cycles;
        feStallCycles += other.feStallCycles;
        beStallCycles += other.beStallCycles;
        starvationCycles += other.starvationCycles;
        starvationIqEmptyCycles += other.starvationIqEmptyCycles;
        resteerEmptyCycles += other.resteerEmptyCycles;
        decodeActiveCycles += other.decodeActiveCycles;
        issueActiveCycles += other.issueActiveCycles;
        loads += other.loads;
        stores += other.stores;
        branchesResolved += other.branchesResolved;
        return *this;
    }
};

/** The back-end pipeline model. */
class Backend
{
  public:
    struct Config
    {
        unsigned width = 8;        ///< Decode/issue/commit width.
        unsigned robEntries = 512;
        unsigned iqEntries = 240;
        unsigned lqEntries = 128;
        unsigned sqEntries = 72;
        unsigned intLatency = 1;
        unsigned mulLatency = 3;
        unsigned fpLatency = 3;
        unsigned branchLatency = 2;
        unsigned storeLatency = 1;
        /** Pseudo-dependence window: a dependent instruction waits on
         *  one of its last depWindow predecessors, so long-latency
         *  loads slow their consumers. */
        unsigned depWindow = 8;
        /** Fraction of instructions carrying such a dependence; the
         *  rest are independent (models the ILP the renamer finds). */
        double depFraction = 0.50;
        /** Fraction of loads that chase the previous load (linked
         *  structures), fully exposing data-miss latency. */
        double loadChainFraction = 0.20;
    };

    using ResolveCallback =
        std::function<void(std::uint64_t seq, std::uint64_t cycle)>;

    Backend(const Config &config, cache::Hierarchy &hierarchy);

    /** Register the front-end's mispredict-resolution callback. */
    void setResolveCallback(ResolveCallback cb)
    {
        resolve_ = std::move(cb);
    }

    /** Retire up to width completed instructions; classify stalls. */
    void commitStage(std::uint64_t now);

    /** Drain completions due this cycle; fire branch resolutions. */
    void executeStage(std::uint64_t now);

    /**
     * Dispatch up to width instructions from @p decode_queue into
     * the window, issuing memory requests for loads/stores. Also
     * evaluates the decode-starvation condition when the queue is
     * empty; @p pending_line names the line fetch is waiting on.
     */
    void issueStage(std::uint64_t now,
                    std::deque<core::DynInst> &decode_queue,
                    std::optional<std::uint64_t> pending_line);

    /** True when dispatch has window space this cycle. */
    bool canAccept() const;

    /** The paper's E signal: no incomplete instruction in flight. */
    bool issueQueueEmpty() const { return inFlightExec_ == 0; }

    bool robEmpty() const { return rob_.empty(); }

    BackendStats &stats() { return stats_; }
    const BackendStats &stats() const { return stats_; }

  private:
    struct RobEntry
    {
        std::uint64_t seq = 0;
        std::uint64_t completeCycle = 0;
        bool isStore = false;
    };

    /** Completion time of the pseudo-producer of @p seq. */
    std::uint64_t depReady(std::uint64_t seq,
                           std::uint64_t pc) const;

    Config config_;
    cache::Hierarchy &hierarchy_;
    ResolveCallback resolve_;

    std::deque<RobEntry> rob_;
    unsigned lqOccupancy_ = 0;
    unsigned sqOccupancy_ = 0;
    unsigned inFlightExec_ = 0;

    /** (completeCycle, seq, isLoad, mispredicted) min-heap. */
    struct Pending
    {
        std::uint64_t cycle;
        std::uint64_t seq;
        bool isLoad;
        bool mispredicted;
        bool operator>(const Pending &o) const
        {
            return cycle > o.cycle;
        }
    };
    std::priority_queue<Pending, std::vector<Pending>,
                        std::greater<Pending>>
        pending_;

    /** Ring buffer of recent completion times for pseudo-deps. */
    static constexpr unsigned kRingSize = 128;
    std::vector<std::uint64_t> completionRing_;
    /** Completion time of the most recent load (pointer chasing). */
    std::uint64_t lastLoadComplete_ = 0;

    BackendStats stats_;
};

} // namespace emissary::backend

#endif // EMISSARY_BACKEND_BACKEND_HH
