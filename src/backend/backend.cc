#include "backend/backend.hh"

#include <algorithm>
#include <cassert>

namespace emissary::backend
{

namespace
{

std::uint64_t
mixPc(std::uint64_t pc)
{
    std::uint64_t z = pc * 0x9e3779b97f4a7c15ULL;
    return z ^ (z >> 31);
}

} // namespace

Backend::Backend(const Config &config, cache::Hierarchy &hierarchy)
    : config_(config), hierarchy_(hierarchy)
{
    completionRing_.assign(kRingSize, 0);
}

std::uint64_t
Backend::depReady(std::uint64_t seq, std::uint64_t pc) const
{
    // A fraction of instructions pseudo-depend on one of their
    // depWindow predecessors (chosen by a PC hash so a given static
    // instruction has stable behaviour). This propagates load
    // latency into consumers without full register renaming while
    // leaving the renamer's ILP visible.
    if (config_.depWindow == 0 || seq == 0)
        return 0;
    const std::uint64_t h = mixPc(pc);
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u >= config_.depFraction)
        return 0;
    const std::uint64_t distance =
        1 + (h >> 32) % config_.depWindow;
    if (seq < distance)
        return 0;
    return completionRing_[(seq - distance) % kRingSize];
}

bool
Backend::canAccept() const
{
    return rob_.size() < config_.robEntries &&
           inFlightExec_ < config_.iqEntries &&
           lqOccupancy_ < config_.lqEntries &&
           sqOccupancy_ < config_.sqEntries;
}

void
Backend::issueStage(std::uint64_t now,
                    std::deque<core::DynInst> &decode_queue,
                    std::optional<std::uint64_t> pending_line)
{
    if (decode_queue.empty()) {
        // Decode starvation (§3): the decode stage wants to pull but
        // the queue feeding it is empty. It only counts as starvation
        // when the back-end could actually accept instructions (a
        // stalled decode cannot starve).
        if (canAccept()) {
            if (pending_line) {
                ++stats_.starvationCycles;
                const bool iq_empty = issueQueueEmpty();
                if (iq_empty)
                    ++stats_.starvationIqEmptyCycles;
                hierarchy_.noteStarvation(*pending_line, iq_empty);
            } else {
                ++stats_.resteerEmptyCycles;
            }
        }
        return;
    }

    unsigned moved = 0;
    while (moved < config_.width && !decode_queue.empty() &&
           canAccept()) {
        const core::DynInst inst = decode_queue.front();
        decode_queue.pop_front();

        const std::uint64_t dep = depReady(inst.seq, inst.rec.pc);
        const std::uint64_t start = std::max(now, dep);
        std::uint64_t complete;
        bool is_load = false;
        bool is_store = false;

        switch (inst.rec.cls) {
          case trace::InstClass::Load: {
            is_load = true;
            ++stats_.loads;
            // Pointer chasing: a slice of loads (linked structures)
            // cannot issue until the previous load's value arrives.
            std::uint64_t issue = now;
            const std::uint64_t h2 = mixPc(inst.rec.pc * 31);
            if (static_cast<double>(h2 >> 11) * 0x1.0p-53 <
                config_.loadChainFraction) {
                issue = std::max(issue, lastLoadComplete_);
            }
            const std::uint64_t mem_ready = hierarchy_.requestData(
                inst.rec.memAddr >> 6, issue, /*write=*/false);
            complete = std::max({start + 1, issue + 1, mem_ready});
            lastLoadComplete_ = complete;
            ++lqOccupancy_;
            break;
          }
          case trace::InstClass::Store: {
            is_store = true;
            ++stats_.stores;
            // Stores retire through the store queue; the fill/dirty
            // traffic is modelled but does not gate completion.
            hierarchy_.requestData(inst.rec.memAddr >> 6, now,
                                   /*write=*/true);
            complete = start + config_.storeLatency;
            ++sqOccupancy_;
            break;
          }
          case trace::InstClass::IntMul:
            complete = start + config_.mulLatency;
            break;
          case trace::InstClass::FpAlu:
            complete = start + config_.fpLatency;
            break;
          case trace::InstClass::CondBranch:
          case trace::InstClass::DirectJump:
          case trace::InstClass::IndirectJump:
          case trace::InstClass::Call:
          case trace::InstClass::IndirectCall:
          case trace::InstClass::Return:
            complete = start + config_.branchLatency;
            break;
          default:
            complete = start + config_.intLatency;
            break;
        }

        completionRing_[inst.seq % kRingSize] = complete;
        rob_.push_back(RobEntry{inst.seq, complete, is_store});
        pending_.push(Pending{complete, inst.seq, is_load,
                              inst.mispredicted});
        ++inFlightExec_;
        ++stats_.issued;
        ++moved;
    }
    if (moved > 0)
        ++stats_.decodeActiveCycles;
}

void
Backend::executeStage(std::uint64_t now)
{
    bool any = false;
    while (!pending_.empty() && pending_.top().cycle <= now) {
        const Pending done = pending_.top();
        pending_.pop();
        assert(inFlightExec_ > 0);
        --inFlightExec_;
        if (done.isLoad) {
            assert(lqOccupancy_ > 0);
            --lqOccupancy_;
        }
        if (done.mispredicted) {
            ++stats_.branchesResolved;
            if (resolve_)
                resolve_(done.seq, done.cycle);
        }
        any = true;
    }
    if (any)
        ++stats_.issueActiveCycles;
}

void
Backend::commitStage(std::uint64_t now)
{
    ++stats_.cycles;
    unsigned committed = 0;
    while (committed < config_.width && !rob_.empty() &&
           rob_.front().completeCycle <= now) {
        if (rob_.front().isStore) {
            assert(sqOccupancy_ > 0);
            --sqOccupancy_;
        }
        rob_.pop_front();
        ++committed;
    }
    stats_.committed += committed;
    if (committed == 0) {
        if (rob_.empty())
            ++stats_.feStallCycles;
        else
            ++stats_.beStallCycles;
    }
}

} // namespace emissary::backend
