/**
 * @file
 * String and numeric-formatting helpers used by reports and parsers.
 */

#ifndef EMISSARY_UTIL_STRUTIL_HH
#define EMISSARY_UTIL_STRUTIL_HH

#include <string>
#include <vector>

namespace emissary
{

/** Split @p text at every occurrence of @p sep (separator dropped). */
std::vector<std::string> split(const std::string &text, char sep);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &text);

/** Uppercase an ASCII string. */
std::string toUpper(const std::string &text);

/** Format @p value with @p decimals digits, e.g. 3.24 -> "3.24". */
std::string formatDouble(double value, int decimals);

/** Format a ratio as a signed percentage string, e.g. "+3.24%". */
std::string formatPercent(double fraction, int decimals = 2);

/** Geometric mean of speedup ratios (inputs are ratios, not percents). */
double geomean(const std::vector<double> &ratios);

/** Arithmetic mean; returns 0 for an empty input. */
double mean(const std::vector<double> &values);

} // namespace emissary

#endif // EMISSARY_UTIL_STRUTIL_HH
