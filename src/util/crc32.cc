#include "util/crc32.hh"

#include <array>

namespace emissary
{

namespace
{

constexpr std::uint32_t kPolynomial = 0xEDB88320u;

std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t value = i;
        for (int bit = 0; bit < 8; ++bit)
            value = (value >> 1) ^ ((value & 1) ? kPolynomial : 0);
        table[i] = value;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(std::uint32_t crc, const void *data, std::size_t size)
{
    static const std::array<std::uint32_t, 256> table = makeTable();
    const unsigned char *bytes =
        static_cast<const unsigned char *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xff];
    return ~crc;
}

} // namespace emissary
