/**
 * @file
 * Small bit-manipulation helpers shared across the simulator.
 */

#ifndef EMISSARY_UTIL_BITUTIL_HH
#define EMISSARY_UTIL_BITUTIL_HH

#include <cassert>
#include <cstdint>

namespace emissary
{

/** Return true when @p v is a non-zero power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * Integer base-2 logarithm of a power of two.
 *
 * @param v Value to take the logarithm of; must be a power of two.
 * @return floor(log2(v)).
 */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v > 1) {
        v >>= 1;
        ++l;
    }
    return l;
}

/** Round @p v down to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Extract bits [lo, lo+len) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned len)
{
    if (len >= 64)
        return v >> lo;
    return (v >> lo) & ((std::uint64_t{1} << len) - 1);
}

} // namespace emissary

#endif // EMISSARY_UTIL_BITUTIL_HH
