/**
 * @file
 * Exact rational probabilities for the paper's R(r) notation.
 *
 * The EMISSARY paper expresses the random mode-selection filter as a
 * rational probability such as R(1/32). Keeping the value exact lets
 * the policy parser round-trip the paper's notation and lets hardware-
 * faithful power-of-two selection (a masked LFSR draw) be used when
 * the denominator allows it.
 */

#ifndef EMISSARY_UTIL_RATIONAL_HH
#define EMISSARY_UTIL_RATIONAL_HH

#include <cstdint>
#include <string>

namespace emissary
{

class Rng;

/** An exact non-negative rational in [0, 1], e.g. the 1/32 in R(1/32). */
class Rational
{
  public:
    /** Default: probability one (always). */
    constexpr Rational() : num_(1), den_(1) {}

    /** @param num Numerator. @param den Denominator; must be > 0. */
    Rational(std::uint64_t num, std::uint64_t den);

    std::uint64_t numerator() const { return num_; }
    std::uint64_t denominator() const { return den_; }

    /** Value as a double, for reporting. */
    double value() const;

    /** True when the probability is exactly one. */
    bool isOne() const { return num_ == den_; }

    /** True when the probability is exactly zero. */
    bool isZero() const { return num_ == 0; }

    /** Draw a Bernoulli trial with this probability. */
    bool draw(Rng &rng) const;

    /** Render in the paper's notation, e.g. "1/32". */
    std::string toString() const;

    /**
     * Parse "a/b" or a bare integer "a" (meaning a/1).
     * @throws std::invalid_argument on malformed input.
     */
    static Rational parse(const std::string &text);

    bool operator==(const Rational &other) const;

  private:
    std::uint64_t num_;
    std::uint64_t den_;
};

} // namespace emissary

#endif // EMISSARY_UTIL_RATIONAL_HH
