/**
 * @file
 * FNV-1a 64-bit hashing for content-addressed identifiers.
 *
 * The sweep-result cache keys every grid cell by a stable hash of
 * its canonical identity string (core::cellCacheCanonical). FNV-1a
 * is not cryptographic — the cache guards against collisions by
 * storing the canonical string inside each entry and comparing it on
 * lookup, so a collision degrades to a cache miss, never to a wrong
 * result.
 */

#ifndef EMISSARY_UTIL_HASH_HH
#define EMISSARY_UTIL_HASH_HH

#include <cstdint>
#include <string>

namespace emissary
{

/** FNV-1a 64-bit over a byte string. */
inline std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/** @p value as 16 lowercase hex digits. */
inline std::string
hex64(std::uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

} // namespace emissary

#endif // EMISSARY_UTIL_HASH_HH
