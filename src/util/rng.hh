/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic behaviour in the simulator (the R(r) mode-selection
 * filter, synthetic workload generation, BIP insertion) must be
 * reproducible run-to-run, so everything draws from explicitly seeded
 * Rng instances rather than global entropy.
 */

#ifndef EMISSARY_UTIL_RNG_HH
#define EMISSARY_UTIL_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

namespace emissary
{

/**
 * xoshiro256** generator.
 *
 * Small, fast and statistically strong enough for microarchitectural
 * simulation; notably faster than std::mt19937_64 in the hot loops of
 * the trace generator.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial that succeeds with probability @p p. */
    bool chance(double p);

    /**
     * Bernoulli trial with probability 1/@p denom using a cheap mask
     * when @p denom is a power of two; this mirrors the LFSR-style
     * "1 of 32" selection hardware in BIP and EMISSARY R(1/32).
     */
    bool oneIn(std::uint64_t denom);

    /** Re-seed the generator deterministically. */
    void seed(std::uint64_t seed);

  private:
    std::array<std::uint64_t, 4> state_;
};

/**
 * Sampler for a (truncated) Zipf distribution over [0, n).
 *
 * Used by the synthetic workload generator to produce the skewed
 * code/data popularity that gives datacenter workloads their
 * short/mid/long reuse-distance mix.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of distinct items.
     * @param s Skew exponent; s = 0 degenerates to uniform.
     */
    ZipfSampler(std::size_t n, double s);

    /** Draw an item index in [0, n); index 0 is the most popular. */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace emissary

#endif // EMISSARY_UTIL_RNG_HH
