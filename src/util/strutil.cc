#include "util/strutil.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace emissary
{

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const auto pos = text.find(sep, start);
        if (pos == std::string::npos) {
            parts.push_back(text.substr(start));
            return parts;
        }
        parts.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

std::string
toUpper(const std::string &text)
{
    std::string out = text;
    for (auto &c : out)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return out;
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatPercent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", decimals,
                  fraction * 100.0);
    return buf;
}

double
geomean(const std::vector<double> &ratios)
{
    if (ratios.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const double r : ratios)
        log_sum += std::log(r);
    return std::exp(log_sum / static_cast<double>(ratios.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (const double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace emissary
