/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte ranges.
 *
 * Used by the EMTC trace container to checksum every compressed
 * block and the block index, so on-disk corruption surfaces as a
 * named error at read time instead of silent metric drift.
 */

#ifndef EMISSARY_UTIL_CRC32_HH
#define EMISSARY_UTIL_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace emissary
{

/**
 * Update a running CRC-32 with @p size bytes.
 * @param crc Previous return value, or 0 for the first chunk.
 */
std::uint32_t crc32(std::uint32_t crc, const void *data,
                    std::size_t size);

/** One-shot CRC-32 of a byte range. */
inline std::uint32_t
crc32(const void *data, std::size_t size)
{
    return crc32(0, data, size);
}

} // namespace emissary

#endif // EMISSARY_UTIL_CRC32_HH
