#include "util/rational.hh"

#include <numeric>
#include <stdexcept>

#include "util/rng.hh"

namespace emissary
{

Rational::Rational(std::uint64_t num, std::uint64_t den)
    : num_(num), den_(den)
{
    if (den_ == 0)
        throw std::invalid_argument("Rational: zero denominator");
    if (num_ > den_)
        throw std::invalid_argument("Rational: probability above one");
    const std::uint64_t g = std::gcd(num_ == 0 ? den_ : num_, den_);
    num_ /= g;
    den_ /= g;
}

double
Rational::value() const
{
    return static_cast<double>(num_) / static_cast<double>(den_);
}

bool
Rational::draw(Rng &rng) const
{
    if (isOne())
        return true;
    if (isZero())
        return false;
    if (num_ == 1)
        return rng.oneIn(den_);
    return rng.nextBelow(den_) < num_;
}

std::string
Rational::toString() const
{
    if (den_ == 1)
        return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational
Rational::parse(const std::string &text)
{
    const auto slash = text.find('/');
    try {
        if (slash == std::string::npos)
            return Rational(std::stoull(text), 1);
        return Rational(std::stoull(text.substr(0, slash)),
                        std::stoull(text.substr(slash + 1)));
    } catch (const std::logic_error &) {
        throw std::invalid_argument("Rational: cannot parse '" + text +
                                    "'");
    }
}

bool
Rational::operator==(const Rational &other) const
{
    return num_ == other.num_ && den_ == other.den_;
}

} // namespace emissary
