#include "util/rng.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/bitutil.hh"

namespace emissary
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t x = seed_value;
    for (auto &s : state_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    assert(bound != 0);
    // Multiply-shift rejection-free mapping; bias is negligible for
    // the bounds used in simulation (all far below 2^40).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

bool
Rng::oneIn(std::uint64_t denom)
{
    assert(denom != 0);
    if (denom == 1)
        return true;
    if (isPowerOfTwo(denom))
        return (next() & (denom - 1)) == 0;
    return nextBelow(denom) == 0;
}

ZipfSampler::ZipfSampler(std::size_t n, double s)
{
    assert(n > 0);
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = acc;
    }
    const double total = acc;
    for (auto &v : cdf_)
        v /= total;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return cdf_.size() - 1;
    return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace emissary
