/**
 * @file
 * ChampSim trace importer: convert ChampSim's public
 * `trace_instr_format` (the 64-byte fixed record its Pin tracer
 * emits) into the EMTC container, mapping the tracer's
 * register-usage branch encoding onto our InstClass taxonomy and
 * synthesizing the nextPc ground truth from each record's successor.
 *
 * The importer reads *decompressed* input; ChampSim traces ship
 * xz-compressed, so the recipe is
 *
 *     xz -dc trace.champsimtrace.xz > trace.bin
 *     trace_pack import-champsim trace.bin trace.emtc
 *
 * which keeps liblzma out of the build (docs/workloads.md).
 */

#ifndef EMISSARY_WORKLOAD_CHAMPSIM_HH
#define EMISSARY_WORKLOAD_CHAMPSIM_HH

#include <cstdint>
#include <string>

#include "trace/record.hh"

namespace emissary::workload
{

/** Bytes of one ChampSim trace_instr_format record. */
constexpr std::size_t kChampSimRecordBytes = 64;

/** ChampSim's fixed register/memory operand slots. */
constexpr std::size_t kChampSimDestinations = 2;
constexpr std::size_t kChampSimSources = 4;

/** The x86 register numbers ChampSim's tracer treats specially. */
constexpr unsigned char kChampSimRegStackPointer = 6;
constexpr unsigned char kChampSimRegFlags = 25;
constexpr unsigned char kChampSimRegInstructionPointer = 26;

/** One decoded ChampSim record (host-endian fields). */
struct ChampSimInstr
{
    std::uint64_t ip = 0;
    bool isBranch = false;
    bool branchTaken = false;
    unsigned char destRegisters[kChampSimDestinations] = {};
    unsigned char srcRegisters[kChampSimSources] = {};
    std::uint64_t destMemory[kChampSimDestinations] = {};
    std::uint64_t srcMemory[kChampSimSources] = {};
};

/** Unpack one 64-byte ChampSim record. */
ChampSimInstr unpackChampSim(const unsigned char *raw);

/** Pack one ChampSim record (fixture generation / tests). */
void packChampSim(const ChampSimInstr &instr, unsigned char *raw);

/**
 * Classify a ChampSim record into our taxonomy using the tracer's
 * register-usage convention (reads/writes of IP, SP and FLAGS):
 * conditional and direct control flow, indirect jumps/calls and
 * returns map directly; non-branches become Load/Store when a
 * memory operand is present, IntAlu otherwise. A branch pattern the
 * convention does not cover degrades to IndirectJump, which is the
 * conservative choice for the front-end model (predicted via
 * ITTAGE, never assumed fall-through).
 */
trace::InstClass classifyChampSim(const ChampSimInstr &instr);

/** Per-class tallies of one import. */
struct ChampSimImportStats
{
    std::uint64_t instructions = 0;
    std::uint64_t branches = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    /** Branch records that fell back to IndirectJump. */
    std::uint64_t unclassifiedBranches = 0;
};

/**
 * Convert a decompressed ChampSim trace file into an EMTC container.
 *
 * nextPc ground truth is synthesized from the next record's ip; the
 * final record's nextPc is the first record's ip so the committed
 * path chains across the replay wrap (docs/workloads.md discusses
 * when that is sound). memAddr takes the first populated memory
 * operand (sources first).
 *
 * @param input_path Decompressed ChampSim trace ("-" is not
 *        supported; use a real file or a process substitution).
 * @param output_path EMTC container to write.
 * @param name Workload display name embedded in the container
 *        (defaults to the input filename).
 * @param max_records Import at most this many records (0 = all).
 * @throws std::runtime_error naming the path and defect on I/O
 *         errors, a truncated record, or an empty input.
 */
ChampSimImportStats importChampSim(const std::string &input_path,
                                   const std::string &output_path,
                                   const std::string &name = "",
                                   std::uint64_t max_records = 0);

/**
 * Export a TraceSource into ChampSim's trace_instr_format
 * (fixture/testing aid — the inverse mapping of classifyChampSim,
 * so importing the result reproduces the control flow; IntMul/FpAlu
 * degrade to IntAlu, which is the information the ChampSim format
 * can carry).
 *
 * @return Records written.
 */
std::uint64_t exportChampSim(trace::TraceSource &source,
                             std::uint64_t records,
                             const std::string &output_path);

} // namespace emissary::workload

#endif // EMISSARY_WORKLOAD_CHAMPSIM_HH
