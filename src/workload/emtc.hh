/**
 * @file
 * EMTC: the compressed, block-indexed trace container.
 *
 * The raw EMTR format (trace/file.hh) stores 26 bytes per record and
 * is fully buffered into RAM on replay, which caps it at toy trace
 * sizes. EMTC stores the same committed-path stream delta-encoded in
 * self-contained blocks — a sequential instruction costs one byte —
 * behind a fixed-size block index, so a reader streams with bounded
 * memory (one packed + one decoded block in flight) and seeks to any
 * record through the index. Every block and the index itself carry a
 * CRC-32, so corruption is detected at read time rather than as
 * silent metric drift.
 *
 * On-disk layout (all integers little-endian; byte-level spec in
 * docs/workloads.md):
 *
 *   header   "EMTC" u32 version=1; u64 recordCount;
 *            u32 recordsPerBlock; u32 nameBytes;
 *            u64 uniqueCodeLines; u64 reserved=0   (40 bytes)
 *   name     nameBytes bytes of workload display name
 *   blocks   back-to-back packed blocks
 *   index    per block: u64 offset; u32 packedBytes; u32 crc32
 *   tail     u64 indexOffset; u32 blockCount; u32 indexCrc;
 *            "EMTE"                                 (20 bytes)
 *
 * Block encoding, per record (prevPc/prevMem reset to 0 at each
 * block start so blocks decode independently):
 *
 *   header byte   bits 0-3 InstClass; bit 4 taken;
 *                 bit 5 nextPc == pc + 4 (no nextPc bytes);
 *                 bit 6 pc == previous record's nextPc (no pc bytes)
 *   [pc]          zigzag varint of pc - prevPc, when bit 6 clear
 *   [nextPc]      zigzag varint of nextPc - pc, when bit 5 clear
 *   [memAddr]     zigzag varint of memAddr - prevMem, for Load/Store
 */

#ifndef EMISSARY_WORKLOAD_EMTC_HH
#define EMISSARY_WORKLOAD_EMTC_HH

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "trace/record.hh"

namespace emissary::workload
{

/** Records per block unless the writer is told otherwise. */
constexpr std::uint32_t kDefaultRecordsPerBlock = 4096;

/** Bytes of the fixed EMTC header (before the name). */
constexpr std::size_t kEmtcHeaderBytes = 40;

/** Bytes of one block-index entry. */
constexpr std::size_t kEmtcIndexEntryBytes = 16;

/** Bytes of the fixed footer tail at end-of-file. */
constexpr std::size_t kEmtcTailBytes = 20;

/** Container metadata, readable without decoding any block. */
struct TraceInfo
{
    std::string path;
    std::string name;             ///< Embedded workload display name.
    std::uint32_t version = 0;
    std::uint64_t recordCount = 0;
    std::uint32_t recordsPerBlock = 0;
    std::uint32_t blockCount = 0;
    /** Unique 64 B instruction lines across the whole trace,
     *  computed at pack time (Fig. 4 footprint). */
    std::uint64_t uniqueCodeLines = 0;
    /** Total container size on disk, header to tail. */
    std::uint64_t fileBytes = 0;
    /** Sum of packed block payload bytes. */
    std::uint64_t packedPayloadBytes = 0;
    /**
     * CRC-32 of the block index. The index stores every block's own
     * CRC-32, so this single value is a digest of the container's
     * full payload — the sweep-result cache uses it as the trace's
     * content identity (core::cellCacheCanonical).
     */
    std::uint32_t indexCrc = 0;

    /** Bytes the same stream costs as a raw EMTR file. */
    std::uint64_t
    rawEmtrBytes() const
    {
        return 16 + recordCount * 26;
    }

    /** Size reduction vs. raw EMTR (>1 means EMTC is smaller). */
    double
    compressionRatio() const
    {
        return fileBytes > 0 ? static_cast<double>(rawEmtrBytes()) /
                                   static_cast<double>(fileBytes)
                             : 0.0;
    }
};

/**
 * Read an EMTC file's header, name and index tail.
 * @throws std::runtime_error naming the path and defect on any
 *         malformed or corrupt metadata.
 */
TraceInfo readTraceInfo(const std::string &path);

/** Streaming EMTC writer: records in, packed CRC'd blocks out. */
class PackedTraceWriter
{
  public:
    /**
     * @param path Output container path.
     * @param name Workload display name embedded in the header.
     * @throws std::runtime_error when the file cannot be opened.
     */
    PackedTraceWriter(const std::string &path, std::string name,
                      std::uint32_t records_per_block =
                          kDefaultRecordsPerBlock);
    ~PackedTraceWriter();

    PackedTraceWriter(const PackedTraceWriter &) = delete;
    PackedTraceWriter &operator=(const PackedTraceWriter &) = delete;

    /** Append one record. */
    void append(const trace::TraceRecord &rec);

    /** Append @p n records. */
    void
    append(const trace::TraceRecord *recs, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            append(recs[i]);
    }

    /** Flush the open block, write index + tail, patch the header,
     *  and close. Called by the destructor if omitted. */
    void finish();

    std::uint64_t recordCount() const { return count_; }

    /** Packed payload bytes written so far (flushed blocks only). */
    std::uint64_t packedPayloadBytes() const { return payloadBytes_; }

  private:
    struct IndexEntry
    {
        std::uint64_t offset;
        std::uint32_t packedBytes;
        std::uint32_t crc;
    };

    void flushBlock();

    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint32_t recordsPerBlock_;
    std::vector<unsigned char> block_;   ///< Encoded open block.
    std::uint32_t blockRecords_ = 0;
    std::uint64_t prevPc_ = 0;
    std::uint64_t prevNextPc_ = 0;
    std::uint64_t prevMem_ = 0;
    std::vector<IndexEntry> index_;
    std::uint64_t count_ = 0;
    std::uint64_t payloadBytes_ = 0;
    std::unordered_set<std::uint64_t> codeLines_;
    bool finished_ = false;
};

/**
 * Streaming EMTC reader: an infinite TraceSource over the container
 * (wrapping at the end of the served window), holding one packed and
 * one decoded block in memory regardless of trace size.
 *
 * Each source owns its own file handle and cursor, so grid cells on
 * different worker threads can stream the same container
 * concurrently through their own instances.
 */
class PackedTraceSource final : public trace::TraceSource
{
  public:
    /**
     * @param path Container to stream.
     * @param skip_records Records dropped from the front before the
     *        served window starts (catalog warmup-skip).
     * @param max_records Serve only the first @p max_records of the
     *        remaining stream, wrapping within that window
     *        (0 = all).
     * @throws std::runtime_error naming the path and defect on
     *         malformed metadata, or when skip_records consumes the
     *         whole trace.
     */
    explicit PackedTraceSource(const std::string &path,
                               std::uint64_t skip_records = 0,
                               std::uint64_t max_records = 0);
    ~PackedTraceSource() override;

    PackedTraceSource(const PackedTraceSource &) = delete;
    PackedTraceSource &operator=(const PackedTraceSource &) = delete;

    trace::TraceRecord next() override;
    void fill(trace::TraceRecord *out, std::size_t n) override;
    const char *name() const override { return displayName_.c_str(); }

    const TraceInfo &info() const { return info_; }

    /** Records in the served (post skip/limit) window. */
    std::uint64_t recordCount() const { return count_; }

    /** Times the stream wrapped back to the window start. */
    std::uint64_t wraps() const { return wraps_; }

    /** Advance the cursor @p n records without serving them (block
     *  seek through the index; skipped blocks are never decoded). */
    void skipRecords(std::uint64_t n);

  private:
    struct IndexEntry
    {
        std::uint64_t offset;
        std::uint32_t packedBytes;
        std::uint32_t crc;
    };

    /** Load + CRC-check + decode the block holding record @p rec. */
    void loadBlockFor(std::uint64_t rec);

    std::FILE *file_ = nullptr;
    TraceInfo info_;
    std::string displayName_;
    std::vector<IndexEntry> index_;
    std::uint64_t first_ = 0;   ///< Window start (absolute record).
    std::uint64_t count_ = 0;   ///< Window length in records.
    std::uint64_t cur_ = 0;     ///< Next absolute record to serve.
    std::uint64_t wraps_ = 0;
    std::uint32_t loadedBlock_ = ~0u;
    std::vector<trace::TraceRecord> decoded_;
    std::vector<unsigned char> packed_;
};

/**
 * Decode every block of @p path, checking each block CRC, the index
 * CRC, and the header's record count against what the blocks hold.
 * A single flipped byte anywhere in the payload fails the CRC of its
 * block and is reported with the block number.
 *
 * @return The verified record count.
 * @throws std::runtime_error naming the path and defect.
 */
std::uint64_t verifyPackedTrace(const std::string &path);

} // namespace emissary::workload

#endif // EMISSARY_WORKLOAD_EMTC_HH
