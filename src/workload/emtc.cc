#include "workload/emtc.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/crc32.hh"

namespace emissary::workload
{

namespace
{

constexpr char kMagic[4] = {'E', 'M', 'T', 'C'};
constexpr char kEndMagic[4] = {'E', 'M', 'T', 'E'};
constexpr std::uint32_t kVersion = 1;

// Record header byte: bits 0-3 class, bit 4 taken, bit 5 sequential
// nextPc, bit 6 pc chained from previous nextPc.
constexpr unsigned char kTakenBit = 0x10;
constexpr unsigned char kSeqNextBit = 0x20;
constexpr unsigned char kChainPcBit = 0x40;

constexpr std::uint8_t kMaxClass =
    static_cast<std::uint8_t>(trace::InstClass::Return);

[[noreturn]] void
fail(const std::string &path, const std::string &defect)
{
    throw std::runtime_error("EMTC: " + path + ": " + defect);
}

std::uint64_t
zigzag(std::uint64_t delta)
{
    const std::int64_t v = static_cast<std::int64_t>(delta);
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::uint64_t
unzigzag(std::uint64_t z)
{
    return (z >> 1) ^ (~(z & 1) + 1);
}

void
putVarint(std::vector<unsigned char> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<unsigned char>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<unsigned char>(v));
}

std::uint64_t
getVarint(const unsigned char *data, std::size_t size,
          std::size_t &pos, const std::string &path,
          std::uint32_t block)
{
    std::uint64_t value = 0;
    unsigned shift = 0;
    while (true) {
        if (pos >= size || shift >= 64)
            fail(path, "block " + std::to_string(block) +
                           ": truncated varint");
        const unsigned char byte = data[pos++];
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return value;
        shift += 7;
    }
}

void
putU32(unsigned char *out, std::uint32_t v)
{
    std::memcpy(out, &v, 4);
}

void
putU64(unsigned char *out, std::uint64_t v)
{
    std::memcpy(out, &v, 8);
}

std::uint32_t
getU32(const unsigned char *in)
{
    std::uint32_t v;
    std::memcpy(&v, in, 4);
    return v;
}

std::uint64_t
getU64(const unsigned char *in)
{
    std::uint64_t v;
    std::memcpy(&v, in, 8);
    return v;
}

struct RawIndexEntry
{
    std::uint64_t offset;
    std::uint32_t packedBytes;
    std::uint32_t crc;
};

/**
 * Decode one packed block into @p out (exactly @p n records).
 * prevPc/prevNextPc/prevMem start at zero, mirroring the encoder's
 * per-block reset, so any block decodes without its predecessors.
 */
void
decodeBlock(const unsigned char *data, std::size_t size,
            std::size_t n, trace::TraceRecord *out,
            const std::string &path, std::uint32_t block)
{
    std::size_t pos = 0;
    std::uint64_t prev_pc = 0;
    std::uint64_t prev_next = 0;
    std::uint64_t prev_mem = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (pos >= size)
            fail(path, "block " + std::to_string(block) +
                           ": truncated at record " +
                           std::to_string(i) + " of " +
                           std::to_string(n));
        const unsigned char header = data[pos++];
        const std::uint8_t cls_bits = header & 0x0f;
        if (cls_bits > kMaxClass)
            fail(path, "block " + std::to_string(block) +
                           ": invalid instruction class " +
                           std::to_string(cls_bits));

        trace::TraceRecord rec;
        rec.cls = static_cast<trace::InstClass>(cls_bits);
        rec.taken = (header & kTakenBit) != 0;
        rec.pc = (header & kChainPcBit)
                     ? prev_next
                     : prev_pc + unzigzag(getVarint(data, size, pos,
                                                    path, block));
        rec.nextPc =
            (header & kSeqNextBit)
                ? rec.pc + trace::kInstBytes
                : rec.pc + unzigzag(getVarint(data, size, pos, path,
                                              block));
        if (trace::isMemory(rec.cls)) {
            rec.memAddr =
                prev_mem + unzigzag(getVarint(data, size, pos, path,
                                              block));
            prev_mem = rec.memAddr;
        }
        prev_pc = rec.pc;
        prev_next = rec.nextPc;
        out[i] = rec;
    }
    if (pos != size)
        fail(path, "block " + std::to_string(block) + ": " +
                       std::to_string(size - pos) +
                       " undecoded trailing bytes");
}

/**
 * Read and validate the header, embedded name, tail and block index
 * of an open EMTC file. Shared by the streaming source, the info
 * command and the verifier.
 */
TraceInfo
readMetadata(std::FILE *file, const std::string &path,
             std::vector<RawIndexEntry> &index)
{
    unsigned char header[kEmtcHeaderBytes];
    if (std::fread(header, 1, sizeof(header), file) != sizeof(header))
        fail(path, "truncated header");
    if (std::memcmp(header, kMagic, 4) != 0)
        fail(path, "bad magic (not an EMTC container)");

    TraceInfo info;
    info.path = path;
    info.version = getU32(header + 4);
    if (info.version != kVersion)
        fail(path, "unsupported version " +
                       std::to_string(info.version) + " (expected " +
                       std::to_string(kVersion) + ")");
    info.recordCount = getU64(header + 8);
    info.recordsPerBlock = getU32(header + 16);
    const std::uint32_t name_bytes = getU32(header + 20);
    info.uniqueCodeLines = getU64(header + 24);
    if (info.recordCount == 0)
        fail(path, "empty trace (header declares 0 records)");
    if (info.recordsPerBlock == 0)
        fail(path, "invalid records-per-block 0");

    if (name_bytes > 4096)
        fail(path, "implausible name length " +
                       std::to_string(name_bytes));
    info.name.resize(name_bytes);
    if (name_bytes > 0 &&
        std::fread(info.name.data(), 1, name_bytes, file) !=
            name_bytes)
        fail(path, "truncated workload name");

    std::fseek(file, 0, SEEK_END);
    const long file_end = std::ftell(file);
    if (file_end < 0 ||
        static_cast<std::uint64_t>(file_end) <
            kEmtcHeaderBytes + name_bytes + kEmtcTailBytes)
        fail(path, "file too small for header and tail");
    info.fileBytes = static_cast<std::uint64_t>(file_end);

    unsigned char tail[kEmtcTailBytes];
    std::fseek(file,
               file_end - static_cast<long>(kEmtcTailBytes),
               SEEK_SET);
    if (std::fread(tail, 1, sizeof(tail), file) != sizeof(tail))
        fail(path, "truncated tail");
    if (std::memcmp(tail + 16, kEndMagic, 4) != 0)
        fail(path, "bad end magic (truncated or not an EMTC "
                   "container)");
    const std::uint64_t index_offset = getU64(tail);
    info.blockCount = getU32(tail + 8);
    const std::uint32_t index_crc = getU32(tail + 12);
    info.indexCrc = index_crc;

    const std::uint64_t expected_blocks =
        (info.recordCount + info.recordsPerBlock - 1) /
        info.recordsPerBlock;
    if (info.blockCount != expected_blocks)
        fail(path, "block count mismatch: tail declares " +
                       std::to_string(info.blockCount) +
                       " blocks, record count needs " +
                       std::to_string(expected_blocks));

    const std::uint64_t index_bytes =
        static_cast<std::uint64_t>(info.blockCount) *
        kEmtcIndexEntryBytes;
    if (index_offset + index_bytes + kEmtcTailBytes !=
        info.fileBytes)
        fail(path, "index offset/size inconsistent with file size");

    std::vector<unsigned char> raw(index_bytes);
    std::fseek(file, static_cast<long>(index_offset), SEEK_SET);
    if (!raw.empty() &&
        std::fread(raw.data(), 1, raw.size(), file) != raw.size())
        fail(path, "truncated block index");
    if (crc32(raw.data(), raw.size()) != index_crc)
        fail(path, "block index CRC mismatch");

    index.clear();
    index.reserve(info.blockCount);
    for (std::uint32_t b = 0; b < info.blockCount; ++b) {
        const unsigned char *entry =
            raw.data() + b * kEmtcIndexEntryBytes;
        RawIndexEntry e;
        e.offset = getU64(entry);
        e.packedBytes = getU32(entry + 8);
        e.crc = getU32(entry + 12);
        if (e.offset < kEmtcHeaderBytes + name_bytes ||
            e.offset + e.packedBytes > index_offset)
            fail(path, "block " + std::to_string(b) +
                           ": offset/size outside the payload "
                           "region");
        info.packedPayloadBytes += e.packedBytes;
        index.push_back(e);
    }
    return info;
}

/** Records held by block @p b (the last block may be short). */
std::size_t
blockRecords(const TraceInfo &info, std::uint32_t b)
{
    const std::uint64_t start =
        static_cast<std::uint64_t>(b) * info.recordsPerBlock;
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(info.recordsPerBlock,
                                info.recordCount - start));
}

} // namespace

TraceInfo
readTraceInfo(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fail(path, "cannot open");
    struct Closer
    {
        std::FILE *f;
        ~Closer() { std::fclose(f); }
    } closer{file};
    std::vector<RawIndexEntry> index;
    return readMetadata(file, path, index);
}

PackedTraceWriter::PackedTraceWriter(const std::string &path,
                                     std::string name,
                                     std::uint32_t records_per_block)
    : path_(path), recordsPerBlock_(records_per_block)
{
    if (recordsPerBlock_ == 0)
        throw std::runtime_error(
            "PackedTraceWriter: records_per_block must be > 0");
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        fail(path_, "cannot open for writing");

    unsigned char header[kEmtcHeaderBytes] = {};
    std::memcpy(header, kMagic, 4);
    putU32(header + 4, kVersion);
    putU64(header + 8, 0);  // Record count, patched by finish().
    putU32(header + 16, recordsPerBlock_);
    putU32(header + 20, static_cast<std::uint32_t>(name.size()));
    putU64(header + 24, 0);  // Unique code lines, patched too.
    if (std::fwrite(header, 1, sizeof(header), file_) !=
            sizeof(header) ||
        (!name.empty() &&
         std::fwrite(name.data(), 1, name.size(), file_) !=
             name.size()))
        fail(path_, "short write");
    block_.reserve(recordsPerBlock_ * 4);
}

PackedTraceWriter::~PackedTraceWriter()
{
    if (!finished_)
        finish();
}

void
PackedTraceWriter::append(const trace::TraceRecord &rec)
{
    unsigned char header =
        static_cast<unsigned char>(rec.cls) & 0x0f;
    if (rec.taken)
        header |= kTakenBit;

    // The committed path chains (pc == previous nextPc) except at
    // block starts, and most instructions fall through — so the
    // common record is this header byte and nothing else.
    const bool chained =
        blockRecords_ > 0 && rec.pc == prevNextPc_;
    const bool seq_next = rec.nextPc == rec.pc + trace::kInstBytes;
    if (chained)
        header |= kChainPcBit;
    if (seq_next)
        header |= kSeqNextBit;
    block_.push_back(header);
    if (!chained)
        putVarint(block_, zigzag(rec.pc - prevPc_));
    if (!seq_next)
        putVarint(block_, zigzag(rec.nextPc - rec.pc));
    if (trace::isMemory(rec.cls)) {
        putVarint(block_, zigzag(rec.memAddr - prevMem_));
        prevMem_ = rec.memAddr;
    }
    prevPc_ = rec.pc;
    prevNextPc_ = rec.nextPc;
    codeLines_.insert(rec.pc >> 6);

    ++count_;
    if (++blockRecords_ == recordsPerBlock_)
        flushBlock();
}

void
PackedTraceWriter::flushBlock()
{
    if (blockRecords_ == 0)
        return;
    const long offset = std::ftell(file_);
    if (offset < 0)
        fail(path_, "ftell failed");
    if (std::fwrite(block_.data(), 1, block_.size(), file_) !=
        block_.size())
        fail(path_, "short write");
    index_.push_back(
        {static_cast<std::uint64_t>(offset),
         static_cast<std::uint32_t>(block_.size()),
         crc32(block_.data(), block_.size())});
    payloadBytes_ += block_.size();
    block_.clear();
    blockRecords_ = 0;
    prevPc_ = 0;
    prevNextPc_ = 0;
    prevMem_ = 0;
}

void
PackedTraceWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    flushBlock();

    const long index_offset = std::ftell(file_);
    if (index_offset < 0)
        fail(path_, "ftell failed");
    std::vector<unsigned char> raw(index_.size() *
                                   kEmtcIndexEntryBytes);
    for (std::size_t b = 0; b < index_.size(); ++b) {
        unsigned char *entry =
            raw.data() + b * kEmtcIndexEntryBytes;
        putU64(entry, index_[b].offset);
        putU32(entry + 8, index_[b].packedBytes);
        putU32(entry + 12, index_[b].crc);
    }
    unsigned char tail[kEmtcTailBytes];
    putU64(tail, static_cast<std::uint64_t>(index_offset));
    putU32(tail + 8, static_cast<std::uint32_t>(index_.size()));
    putU32(tail + 12, crc32(raw.data(), raw.size()));
    std::memcpy(tail + 16, kEndMagic, 4);
    if ((!raw.empty() &&
         std::fwrite(raw.data(), 1, raw.size(), file_) !=
             raw.size()) ||
        std::fwrite(tail, 1, sizeof(tail), file_) != sizeof(tail))
        fail(path_, "short write");

    std::fseek(file_, 8, SEEK_SET);
    unsigned char patch[8];
    putU64(patch, count_);
    std::fwrite(patch, 1, 8, file_);
    std::fseek(file_, 24, SEEK_SET);
    putU64(patch, codeLines_.size());
    std::fwrite(patch, 1, 8, file_);
    std::fclose(file_);
    file_ = nullptr;
}

PackedTraceSource::PackedTraceSource(const std::string &path,
                                     std::uint64_t skip_records,
                                     std::uint64_t max_records)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        fail(path, "cannot open");
    std::vector<RawIndexEntry> raw_index;
    try {
        info_ = readMetadata(file_, path, raw_index);
    } catch (...) {
        std::fclose(file_);
        file_ = nullptr;
        throw;
    }
    index_.reserve(raw_index.size());
    for (const RawIndexEntry &e : raw_index)
        index_.push_back({e.offset, e.packedBytes, e.crc});

    if (skip_records >= info_.recordCount)
        fail(path, "skip_records " + std::to_string(skip_records) +
                       " consumes the whole trace (" +
                       std::to_string(info_.recordCount) +
                       " records)");
    first_ = skip_records;
    count_ = info_.recordCount - skip_records;
    if (max_records > 0 && max_records < count_)
        count_ = max_records;
    cur_ = first_;
    displayName_ =
        "emtc:" + (info_.name.empty() ? path : info_.name);
    decoded_.reserve(info_.recordsPerBlock);
}

PackedTraceSource::~PackedTraceSource()
{
    if (file_)
        std::fclose(file_);
}

void
PackedTraceSource::loadBlockFor(std::uint64_t rec)
{
    const std::uint32_t block =
        static_cast<std::uint32_t>(rec / info_.recordsPerBlock);
    if (block == loadedBlock_)
        return;
    const IndexEntry &entry = index_[block];
    packed_.resize(entry.packedBytes);
    std::fseek(file_, static_cast<long>(entry.offset), SEEK_SET);
    if (std::fread(packed_.data(), 1, packed_.size(), file_) !=
        packed_.size())
        fail(info_.path, "block " + std::to_string(block) +
                             ": truncated payload");
    if (crc32(packed_.data(), packed_.size()) != entry.crc)
        fail(info_.path, "block " + std::to_string(block) +
                             ": CRC mismatch (corrupt container)");
    const std::size_t n = blockRecords(info_, block);
    decoded_.resize(n);
    decodeBlock(packed_.data(), packed_.size(), n, decoded_.data(),
                info_.path, block);
    loadedBlock_ = block;
}

trace::TraceRecord
PackedTraceSource::next()
{
    loadBlockFor(cur_);
    const std::uint64_t block_start =
        static_cast<std::uint64_t>(loadedBlock_) *
        info_.recordsPerBlock;
    const trace::TraceRecord rec = decoded_[cur_ - block_start];
    if (++cur_ == first_ + count_) {
        cur_ = first_;
        ++wraps_;
    }
    return rec;
}

void
PackedTraceSource::fill(trace::TraceRecord *out, std::size_t n)
{
    std::size_t i = 0;
    while (i < n) {
        loadBlockFor(cur_);
        const std::uint64_t block_start =
            static_cast<std::uint64_t>(loadedBlock_) *
            info_.recordsPerBlock;
        const std::uint64_t window_end = first_ + count_;
        const std::uint64_t avail =
            std::min(block_start + decoded_.size(), window_end) -
            cur_;
        const std::size_t run = static_cast<std::size_t>(
            std::min<std::uint64_t>(n - i, avail));
        std::copy_n(decoded_.begin() +
                        static_cast<std::ptrdiff_t>(cur_ -
                                                    block_start),
                    run, out + i);
        i += run;
        cur_ += run;
        if (cur_ == window_end) {
            cur_ = first_;
            ++wraps_;
        }
    }
}

void
PackedTraceSource::skipRecords(std::uint64_t n)
{
    // Pure cursor arithmetic: skipped blocks are never read, so a
    // deep warmup-skip costs one seek when serving resumes.
    const std::uint64_t from_start = cur_ - first_ + n;
    wraps_ += from_start / count_;
    cur_ = first_ + from_start % count_;
}

std::uint64_t
verifyPackedTrace(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fail(path, "cannot open");
    struct Closer
    {
        std::FILE *f;
        ~Closer() { std::fclose(f); }
    } closer{file};

    std::vector<RawIndexEntry> index;
    const TraceInfo info = readMetadata(file, path, index);

    std::vector<unsigned char> packed;
    std::vector<trace::TraceRecord> decoded;
    std::uint64_t records = 0;
    for (std::uint32_t b = 0; b < info.blockCount; ++b) {
        packed.resize(index[b].packedBytes);
        std::fseek(file, static_cast<long>(index[b].offset),
                   SEEK_SET);
        if (std::fread(packed.data(), 1, packed.size(), file) !=
            packed.size())
            fail(path, "block " + std::to_string(b) +
                           ": truncated payload");
        if (crc32(packed.data(), packed.size()) != index[b].crc)
            fail(path, "block " + std::to_string(b) +
                           ": CRC mismatch (corrupt container)");
        const std::size_t n = blockRecords(info, b);
        decoded.resize(n);
        decodeBlock(packed.data(), packed.size(), n, decoded.data(),
                    path, b);
        records += n;
    }
    if (records != info.recordCount)
        fail(path, "decoded " + std::to_string(records) +
                       " records but header declares " +
                       std::to_string(info.recordCount));
    return records;
}

} // namespace emissary::workload
