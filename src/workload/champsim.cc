#include "workload/champsim.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "workload/emtc.hh"

namespace emissary::workload
{

namespace
{

[[noreturn]] void
fail(const std::string &path, const std::string &defect)
{
    throw std::runtime_error("champsim import: " + path + ": " +
                             defect);
}

bool
hasRegister(const unsigned char *regs, std::size_t n,
            unsigned char reg)
{
    for (std::size_t i = 0; i < n; ++i)
        if (regs[i] == reg)
            return true;
    return false;
}

bool
hasOtherRegister(const unsigned char *regs, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (regs[i] != 0 && regs[i] != kChampSimRegStackPointer &&
            regs[i] != kChampSimRegFlags &&
            regs[i] != kChampSimRegInstructionPointer)
            return true;
    return false;
}

std::uint64_t
firstMemoryOperand(const ChampSimInstr &instr)
{
    for (std::uint64_t addr : instr.srcMemory)
        if (addr != 0)
            return addr;
    for (std::uint64_t addr : instr.destMemory)
        if (addr != 0)
            return addr;
    return 0;
}

} // namespace

ChampSimInstr
unpackChampSim(const unsigned char *raw)
{
    ChampSimInstr instr;
    std::memcpy(&instr.ip, raw, 8);
    instr.isBranch = raw[8] != 0;
    instr.branchTaken = raw[9] != 0;
    std::memcpy(instr.destRegisters, raw + 10, kChampSimDestinations);
    std::memcpy(instr.srcRegisters, raw + 12, kChampSimSources);
    std::memcpy(instr.destMemory, raw + 16,
                8 * kChampSimDestinations);
    std::memcpy(instr.srcMemory, raw + 32, 8 * kChampSimSources);
    return instr;
}

void
packChampSim(const ChampSimInstr &instr, unsigned char *raw)
{
    std::memset(raw, 0, kChampSimRecordBytes);
    std::memcpy(raw, &instr.ip, 8);
    raw[8] = instr.isBranch ? 1 : 0;
    raw[9] = instr.branchTaken ? 1 : 0;
    std::memcpy(raw + 10, instr.destRegisters, kChampSimDestinations);
    std::memcpy(raw + 12, instr.srcRegisters, kChampSimSources);
    std::memcpy(raw + 16, instr.destMemory,
                8 * kChampSimDestinations);
    std::memcpy(raw + 32, instr.srcMemory, 8 * kChampSimSources);
}

trace::InstClass
classifyChampSim(const ChampSimInstr &instr)
{
    if (!instr.isBranch) {
        // Read-modify-write counts as a Load: the read is what the
        // L1D access stream sees first.
        for (std::uint64_t addr : instr.srcMemory)
            if (addr != 0)
                return trace::InstClass::Load;
        for (std::uint64_t addr : instr.destMemory)
            if (addr != 0)
                return trace::InstClass::Store;
        return trace::InstClass::IntAlu;
    }

    const bool reads_sp = hasRegister(
        instr.srcRegisters, kChampSimSources, kChampSimRegStackPointer);
    const bool reads_flags = hasRegister(
        instr.srcRegisters, kChampSimSources, kChampSimRegFlags);
    const bool reads_ip =
        hasRegister(instr.srcRegisters, kChampSimSources,
                    kChampSimRegInstructionPointer);
    const bool reads_other =
        hasOtherRegister(instr.srcRegisters, kChampSimSources);
    const bool writes_sp = hasRegister(instr.destRegisters,
                                       kChampSimDestinations,
                                       kChampSimRegStackPointer);
    const bool writes_ip =
        hasRegister(instr.destRegisters, kChampSimDestinations,
                    kChampSimRegInstructionPointer);

    // ChampSim's tracer encodes the branch kind purely in which of
    // IP/SP/FLAGS the instruction reads and writes.
    if (writes_ip && !writes_sp && !reads_sp) {
        if (reads_ip && !reads_flags && !reads_other)
            return trace::InstClass::DirectJump;
        if (reads_ip && reads_flags && !reads_other)
            return trace::InstClass::CondBranch;
        if (!reads_ip && !reads_flags)
            return trace::InstClass::IndirectJump;
    }
    if (writes_ip && writes_sp && reads_sp && !reads_flags) {
        if (reads_ip && !reads_other)
            return trace::InstClass::Call;
        if (!reads_ip && reads_other)
            return trace::InstClass::IndirectCall;
        if (!reads_ip && !reads_other)
            return trace::InstClass::Return;
    }
    // Unmatched pattern (e.g. a REP-string quirk): degrade to an
    // indirect jump so the target is never assumed computable.
    return trace::InstClass::IndirectJump;
}

ChampSimImportStats
importChampSim(const std::string &input_path,
               const std::string &output_path,
               const std::string &name, std::uint64_t max_records)
{
    std::FILE *file = std::fopen(input_path.c_str(), "rb");
    if (!file)
        fail(input_path, "cannot open");
    struct Closer
    {
        std::FILE *f;
        ~Closer() { std::fclose(f); }
    } closer{file};

    std::string workload_name = name;
    if (workload_name.empty()) {
        const std::size_t slash = input_path.find_last_of('/');
        workload_name = slash == std::string::npos
                            ? input_path
                            : input_path.substr(slash + 1);
    }
    PackedTraceWriter writer(output_path, workload_name);
    ChampSimImportStats stats;

    // One-record lookahead: record i commits with nextPc = ip of
    // record i+1. The final record closes the loop back to the first
    // ip so the committed path chains across the replay wrap.
    auto emit = [&](const ChampSimInstr &instr,
                    std::uint64_t next_ip) {
        trace::TraceRecord rec;
        rec.pc = instr.ip;
        rec.nextPc = next_ip;
        const trace::InstClass cls = classifyChampSim(instr);
        rec.cls = cls;
        rec.taken = cls == trace::InstClass::CondBranch
                        ? instr.branchTaken
                        : trace::isControl(cls);
        rec.memAddr = trace::isMemory(cls)
                          ? firstMemoryOperand(instr)
                          : 0;
        writer.append(rec);

        ++stats.instructions;
        if (instr.isBranch) {
            ++stats.branches;
            if (!trace::isControl(cls))
                ++stats.unclassifiedBranches;
        }
        if (cls == trace::InstClass::Load)
            ++stats.loads;
        else if (cls == trace::InstClass::Store)
            ++stats.stores;
    };

    unsigned char raw[kChampSimRecordBytes];
    ChampSimInstr pending;
    bool have_pending = false;
    std::uint64_t first_ip = 0;
    std::uint64_t consumed = 0;
    while (max_records == 0 || consumed < max_records) {
        const std::size_t got =
            std::fread(raw, 1, kChampSimRecordBytes, file);
        if (got == 0)
            break;
        if (got != kChampSimRecordBytes)
            fail(input_path,
                 "truncated record " + std::to_string(consumed) +
                     " (" + std::to_string(got) + " of " +
                     std::to_string(kChampSimRecordBytes) +
                     " bytes)");
        const ChampSimInstr instr = unpackChampSim(raw);
        if (have_pending)
            emit(pending, instr.ip);
        else
            first_ip = instr.ip;
        pending = instr;
        have_pending = true;
        ++consumed;
    }
    if (!have_pending)
        fail(input_path, "empty trace (no records)");
    emit(pending, first_ip);

    writer.finish();
    return stats;
}

std::uint64_t
exportChampSim(trace::TraceSource &source, std::uint64_t records,
               const std::string &output_path)
{
    std::FILE *file = std::fopen(output_path.c_str(), "wb");
    if (!file)
        fail(output_path, "cannot open for writing");
    struct Closer
    {
        std::FILE *f;
        ~Closer() { std::fclose(f); }
    } closer{file};

    constexpr std::size_t kChunk = 1024;
    std::vector<trace::TraceRecord> recs(kChunk);
    std::vector<unsigned char> raw(kChunk * kChampSimRecordBytes);
    std::uint64_t written = 0;
    while (written < records) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(kChunk, records - written));
        source.fill(recs.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            const trace::TraceRecord &rec = recs[i];
            ChampSimInstr instr;
            instr.ip = rec.pc;
            instr.isBranch = trace::isControl(rec.cls);
            instr.branchTaken =
                rec.cls == trace::InstClass::CondBranch
                    ? rec.taken
                    : instr.isBranch;
            // Registers chosen to invert classifyChampSim exactly.
            switch (rec.cls) {
              case trace::InstClass::CondBranch:
                instr.srcRegisters[0] =
                    kChampSimRegInstructionPointer;
                instr.srcRegisters[1] = kChampSimRegFlags;
                instr.destRegisters[0] =
                    kChampSimRegInstructionPointer;
                break;
              case trace::InstClass::DirectJump:
                instr.srcRegisters[0] =
                    kChampSimRegInstructionPointer;
                instr.destRegisters[0] =
                    kChampSimRegInstructionPointer;
                break;
              case trace::InstClass::IndirectJump:
                instr.srcRegisters[0] = 1;  // Target register.
                instr.destRegisters[0] =
                    kChampSimRegInstructionPointer;
                break;
              case trace::InstClass::Call:
                instr.srcRegisters[0] =
                    kChampSimRegInstructionPointer;
                instr.srcRegisters[1] = kChampSimRegStackPointer;
                instr.destRegisters[0] =
                    kChampSimRegInstructionPointer;
                instr.destRegisters[1] = kChampSimRegStackPointer;
                break;
              case trace::InstClass::IndirectCall:
                instr.srcRegisters[0] = kChampSimRegStackPointer;
                instr.srcRegisters[1] = 1;  // Target register.
                instr.destRegisters[0] =
                    kChampSimRegInstructionPointer;
                instr.destRegisters[1] = kChampSimRegStackPointer;
                break;
              case trace::InstClass::Return:
                instr.srcRegisters[0] = kChampSimRegStackPointer;
                instr.destRegisters[0] =
                    kChampSimRegInstructionPointer;
                instr.destRegisters[1] = kChampSimRegStackPointer;
                break;
              case trace::InstClass::Load:
                instr.srcMemory[0] = rec.memAddr;
                break;
              case trace::InstClass::Store:
                instr.destMemory[0] = rec.memAddr;
                break;
              default:
                break;  // IntAlu / IntMul / FpAlu: plain record.
            }
            packChampSim(instr,
                         raw.data() + i * kChampSimRecordBytes);
        }
        if (std::fwrite(raw.data(), kChampSimRecordBytes, n, file) !=
            n)
            fail(output_path, "short write");
        written += n;
    }
    return written;
}

} // namespace emissary::workload
