#include "frontend/btb.hh"

#include <stdexcept>

#include "util/bitutil.hh"

namespace emissary::frontend
{

BasicBlockBtb::BasicBlockBtb(unsigned entries, unsigned ways)
    : ways_(ways)
{
    if (ways == 0 || entries % ways != 0)
        throw std::invalid_argument("BTB: entries/ways mismatch");
    sets_ = entries / ways;
    if (!isPowerOfTwo(sets_))
        throw std::invalid_argument("BTB: set count must be a power "
                                    "of 2");
    table_.assign(std::size_t{sets_} * ways_, Way{});
}

unsigned
BasicBlockBtb::setIndex(std::uint64_t start_pc) const
{
    // Instructions are 4-byte aligned; drop the low bits.
    return static_cast<unsigned>((start_pc >> 2) & (sets_ - 1));
}

const BtbEntry *
BasicBlockBtb::lookup(std::uint64_t start_pc)
{
    const unsigned set = setIndex(start_pc);
    for (unsigned w = 0; w < ways_; ++w) {
        Way &way = table_[std::size_t{set} * ways_ + w];
        if (way.valid && way.entry.startPc == start_pc) {
            way.lastUse = ++useClock_;
            ++hits_;
            return &way.entry;
        }
    }
    ++misses_;
    return nullptr;
}

void
BasicBlockBtb::install(const BtbEntry &entry)
{
    const unsigned set = setIndex(entry.startPc);
    Way *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Way &way = table_[std::size_t{set} * ways_ + w];
        if (way.valid && way.entry.startPc == entry.startPc) {
            way.entry = entry;
            way.lastUse = ++useClock_;
            return;
        }
        // Prefer an invalid way, then the least recently used one.
        if (!victim || (victim->valid && !way.valid) ||
            (victim->valid && way.valid &&
             way.lastUse < victim->lastUse)) {
            victim = &way;
        }
    }
    victim->valid = true;
    victim->entry = entry;
    victim->lastUse = ++useClock_;
}

} // namespace emissary::frontend
