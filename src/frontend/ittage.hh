/**
 * @file
 * ITTAGE indirect-target predictor (Table 4).
 *
 * Tagged, history-indexed tables store full targets with a small
 * confidence counter; the longest confident match provides the
 * prediction, falling back to the caller-supplied base target (the
 * BTB's last-seen target).
 */

#ifndef EMISSARY_FRONTEND_ITTAGE_HH
#define EMISSARY_FRONTEND_ITTAGE_HH

#include <cstdint>
#include <vector>

#include "frontend/tage.hh"

namespace emissary::frontend
{

/** ITTAGE indirect target predictor. */
class Ittage
{
  public:
    struct Config
    {
        unsigned tableLog = 9;
        unsigned tagBits = 9;
        std::vector<unsigned> historyLengths = {8, 32, 128};
        std::uint64_t seed = 0x177A6EULL;
    };

    Ittage();
    explicit Ittage(const Config &config);

    /**
     * Predict the target of the indirect branch at @p pc.
     * @param base_target Fallback (e.g. BTB last target; 0 if none).
     */
    std::uint64_t predict(std::uint64_t pc, std::uint64_t base_target);

    /** Train with the resolved @p target and advance history. */
    void update(std::uint64_t pc, std::uint64_t target);

  private:
    struct Entry
    {
        std::uint64_t target = 0;
        std::uint16_t tag = 0;
        std::uint8_t conf = 0;    ///< 2-bit confidence.
        std::uint8_t useful = 0;  ///< 1-bit useful.
    };

    unsigned tableIndex(std::uint64_t pc, unsigned table) const;
    std::uint16_t tableTag(std::uint64_t pc, unsigned table) const;
    void pushHistory(std::uint64_t target);

    struct Snapshot
    {
        std::uint64_t pc = 0;
        int provider = -1;
        std::uint64_t pred = 0;
        unsigned indices[8] = {};
        std::uint16_t tags[8] = {};
    };

    Config config_;
    std::vector<std::vector<Entry>> tables_;
    std::vector<FoldedHistory> indexFold_;
    std::vector<FoldedHistory> tagFold_;
    std::vector<std::uint8_t> history_;
    unsigned historyPos_ = 0;
    Snapshot last_;
    Rng rng_;
};

} // namespace emissary::frontend

#endif // EMISSARY_FRONTEND_ITTAGE_HH
