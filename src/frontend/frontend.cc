#include "frontend/frontend.hh"

#include <algorithm>
#include <cassert>

namespace emissary::frontend
{

namespace
{
constexpr unsigned kLineShift = 6;  // 64 B lines.
} // namespace

FrontEnd::FrontEnd(const Config &config, trace::TraceSource &source,
                   cache::Hierarchy &hierarchy)
    : config_(config),
      source_(source),
      hierarchy_(hierarchy),
      btb_(config.btbEntries, config.btbWays),
      tage_(config.tage),
      ittage_(config.ittage),
      ras_(config.rasDepth)
{
}

FtqEntry
FrontEnd::buildBlock()
{
    FtqEntry entry;
    std::uint64_t last_line = ~std::uint64_t{0};
    while (true) {
        core::DynInst inst;
        inst.rec = nextRecord();
        inst.seq = ++seq_;

        const std::uint64_t line = inst.rec.pc >> kLineShift;
        if (line != last_line) {
            entry.lines.push_back(FtqEntry::LineState{line, 0, false});
            last_line = line;
        }
        const bool is_control = trace::isControl(inst.rec.cls);
        entry.instrs.push_back(inst);
        if (is_control ||
            entry.instrs.size() >= config_.maxBlockInstrs)
            break;
    }
    return entry;
}

void
FrontEnd::predictTerminator(FtqEntry &entry, std::uint64_t now)
{
    core::DynInst &term = entry.instrs.back();
    const trace::TraceRecord &rec = term.rec;
    if (!trace::isControl(rec.cls))
        return;  // Oversized straight-line block; nothing to predict.

    const std::uint64_t start_pc = entry.instrs.front().rec.pc;
    const BtbEntry *btb_entry = btb_.lookup(start_pc);
    const bool btb_hit = btb_entry != nullptr;
    if (!btb_hit)
        ++stats_.btbMisses;

    bool mispredict = false;
    // Pre-decode wait: block boundary/target unknown until the
    // block's bytes arrive and the pre-decoder fills the BTB.
    bool predecode_wait = !btb_hit;

    switch (rec.cls) {
      case trace::InstClass::CondBranch: {
        ++stats_.condBranches;
        const bool pred_taken = tage_.predict(rec.pc);
        tage_.update(rec.pc, rec.taken);
        if (btb_hit) {
            if (pred_taken != rec.taken) {
                mispredict = true;
            } else if (rec.taken && btb_entry->takenTarget != 0 &&
                       btb_entry->takenTarget != rec.nextPc) {
                // Stale target (aliased entry): re-steer like a
                // mispredict.
                mispredict = true;
            } else if (rec.taken && btb_entry->takenTarget == 0) {
                // Direction known but target never observed; the
                // pre-decoder supplies it from the block's bytes.
                predecode_wait = true;
            }
        }
        if (mispredict)
            ++stats_.condMispredicts;
        break;
      }
      case trace::InstClass::DirectJump:
      case trace::InstClass::Call: {
        if (rec.cls == trace::InstClass::Call)
            ras_.push(rec.pc + trace::kInstBytes);
        tage_.updateUnconditional(rec.pc);
        break;
      }
      case trace::InstClass::IndirectJump:
      case trace::InstClass::IndirectCall: {
        ++stats_.indirectBranches;
        const std::uint64_t base =
            btb_hit ? btb_entry->takenTarget : 0;
        const std::uint64_t pred = ittage_.predict(rec.pc, base);
        ittage_.update(rec.pc, rec.nextPc);
        if (pred != rec.nextPc) {
            mispredict = true;
            ++stats_.indirectMispredicts;
        }
        if (rec.cls == trace::InstClass::IndirectCall)
            ras_.push(rec.pc + trace::kInstBytes);
        tage_.updateUnconditional(rec.pc);
        break;
      }
      case trace::InstClass::Return: {
        ++stats_.returns;
        const std::uint64_t pred = ras_.pop();
        if (pred != rec.nextPc) {
            mispredict = true;
            ++stats_.returnMispredicts;
        }
        tage_.updateUnconditional(rec.pc);
        break;
      }
      default:
        break;
    }

    // Teach the BTB the block descriptor (pre-decoder path). For
    // conditional branches the taken target is only learnable once
    // observed taken.
    BtbEntry teach;
    teach.startPc = start_pc;
    teach.instrCount =
        static_cast<std::uint16_t>(entry.instrs.size());
    teach.endClass = rec.cls;
    if (rec.cls == trace::InstClass::CondBranch && !rec.taken) {
        teach.takenTarget = btb_hit ? btb_entry->takenTarget : 0;
    } else {
        teach.takenTarget = rec.nextPc;
    }
    btb_.install(teach);

    if (mispredict) {
        term.mispredicted = true;
        haltedOnSeq_ = term.seq;
    }

    if (predecode_wait) {
        // Enqueuing stalls on BTB misses (§5.2): the next block's
        // prediction cannot start until this block's bytes reach the
        // pre-decoder, i.e. until its lines arrive. This serializes
        // cold-path fetch at roughly one miss latency per block and
        // is exactly where an L2 hit on a protected line (14 cycles)
        // beats an L3/DRAM trip (46/246 cycles). Meanwhile the two
        // fall-through lines are prefetched (paper §5.2), which lets
        // straight-line cold code pipeline its stalls.
        if (rec.taken)
            ++stats_.btbMissResteers;
        const cache::RequestKind kind =
            config_.fdip ? cache::RequestKind::Fdip
                         : cache::RequestKind::Demand;
        requestLines(entry, now, kind);
        std::uint64_t bytes_ready = now;
        for (const auto &line : entry.lines)
            bytes_ready = std::max(bytes_ready, line.readyCycle);
        bpuStallUntil_ = std::max(
            bpuStallUntil_, bytes_ready + config_.predecodeDelay);
        bpuWaitLine_ = entry.lines.back().lineAddr;

        const std::uint64_t last_line = entry.lines.back().lineAddr;
        hierarchy_.requestInstruction(last_line + 1, now, kind);
        hierarchy_.requestInstruction(last_line + 2, now, kind);
    }
}

void
FrontEnd::predict(std::uint64_t now)
{
    if (haltedOnSeq_ || now < bpuStallUntil_)
        return;
    if (ftq_.size() >= config_.ftqEntries ||
        ftqInstrCount_ >= config_.ftqInstrs)
        return;

    FtqEntry entry = buildBlock();
    predictTerminator(entry, now);
    ftqInstrCount_ += static_cast<unsigned>(entry.instrs.size());
    ++stats_.blocksFormed;
    ftq_.push_back(std::move(entry));
}

void
FrontEnd::requestLines(FtqEntry &entry, std::uint64_t now,
                       cache::RequestKind kind)
{
    for (auto &line : entry.lines) {
        if (line.requested)
            continue;
        line.readyCycle =
            hierarchy_.requestInstruction(line.lineAddr, now, kind);
        line.requested = true;
        if (kind == cache::RequestKind::Fdip)
            ++stats_.fdipRequests;
    }
    entry.linesRequested = true;
}

void
FrontEnd::prefetch(std::uint64_t now)
{
    if (!config_.fdip)
        return;
    unsigned budget = config_.fdipLinesPerCycle;
    for (auto &entry : ftq_) {
        if (budget == 0)
            break;
        if (entry.linesRequested)
            continue;
        const unsigned cost =
            static_cast<unsigned>(entry.lines.size());
        requestLines(entry, now, cache::RequestKind::Fdip);
        budget -= std::min(budget, cost);
    }
}

void
FrontEnd::fetch(std::uint64_t now,
                std::deque<core::DynInst> &decode_queue)
{
    unsigned budget = config_.fetchWidth;
    while (budget > 0 && !ftq_.empty() &&
           decode_queue.size() < config_.decodeQueueCap) {
        FtqEntry &entry = ftq_.front();
        if (!entry.linesRequested) {
            // FDIP disabled (or hasn't reached this entry): issue the
            // demand requests now.
            requestLines(entry, now,
                         config_.fdip ? cache::RequestKind::Fdip
                                      : cache::RequestKind::Demand);
        }

        const core::DynInst &inst = entry.instrs[entry.consumed];
        const std::uint64_t line = inst.rec.pc >> kLineShift;
        const auto it = std::find_if(
            entry.lines.begin(), entry.lines.end(),
            [line](const FtqEntry::LineState &ls) {
                return ls.lineAddr == line;
            });
        assert(it != entry.lines.end());
        if (it->readyCycle > now)
            break;  // Head line still in flight: fetch stalls.

        decode_queue.push_back(inst);
        ++stats_.fetchedInstrs;
        ++entry.consumed;
        --budget;
        if (entry.consumed == entry.instrs.size()) {
            ftqInstrCount_ -=
                static_cast<unsigned>(entry.instrs.size());
            ftq_.pop_front();
        }
    }
}

void
FrontEnd::onBranchResolved(std::uint64_t seq, std::uint64_t cycle)
{
    if (haltedOnSeq_ && *haltedOnSeq_ == seq) {
        haltedOnSeq_.reset();
        bpuStallUntil_ =
            std::max(bpuStallUntil_, cycle + config_.resteerLatency);
    }
}

std::optional<std::uint64_t>
FrontEnd::pendingFetchLine(std::uint64_t now) const
{
    if (ftq_.empty()) {
        // The FTQ drained while the BPU waits for a cold block's
        // bytes: the decode stage is starving on that block's line.
        if (bpuWaitLine_ && now < bpuStallUntil_)
            return bpuWaitLine_;
        return std::nullopt;
    }
    const FtqEntry &entry = ftq_.front();
    if (!entry.linesRequested)
        return std::nullopt;
    const std::uint64_t line =
        entry.instrs[entry.consumed].rec.pc >> kLineShift;
    for (const auto &ls : entry.lines) {
        if (ls.lineAddr == line)
            return ls.readyCycle > now
                       ? std::optional<std::uint64_t>(line)
                       : std::nullopt;
    }
    return std::nullopt;
}

} // namespace emissary::frontend
