#include "frontend/tage.hh"

#include <cassert>

namespace emissary::frontend
{

void
FoldedHistory::init(unsigned orig_length, unsigned compressed_length)
{
    comp_ = 0;
    origLength_ = orig_length;
    compLength_ = compressed_length == 0 ? 1 : compressed_length;
    outPoint_ = orig_length % compLength_;
}

void
FoldedHistory::update(const std::vector<std::uint8_t> &history,
                      unsigned pos)
{
    // history[pos] is the newest bit; the bit leaving the window is
    // origLength_ positions older.
    const unsigned size = static_cast<unsigned>(history.size());
    const std::uint32_t in_bit = history[pos];
    const std::uint32_t out_bit =
        history[(pos + size - origLength_) % size];

    comp_ = (comp_ << 1) | in_bit;
    comp_ ^= out_bit << outPoint_;
    comp_ ^= comp_ >> compLength_;
    comp_ &= (std::uint32_t{1} << compLength_) - 1;
}

Tage::Tage() : Tage(Config())
{
}

Tage::Tage(const Config &config) : config_(config), rng_(config.seed)
{
    bimodal_.assign(std::size_t{1} << config_.bimodalLog, 0);
    const unsigned n = static_cast<unsigned>(
        config_.historyLengths.size());
    assert(n <= 8 && "Snapshot::indices sized for <= 8 tables");
    tables_.assign(n, std::vector<TaggedEntry>(
                          std::size_t{1} << config_.tableLog));
    indexFold_.resize(n);
    tagFold1_.resize(n);
    tagFold2_.resize(n);
    unsigned max_len = 0;
    for (unsigned t = 0; t < n; ++t) {
        const unsigned len = config_.historyLengths[t];
        max_len = std::max(max_len, len);
        indexFold_[t].init(len, config_.tableLog);
        tagFold1_[t].init(len, config_.tagBits);
        tagFold2_[t].init(len, config_.tagBits - 1);
    }
    history_.assign(max_len + 64, 0);
}

unsigned
Tage::bimodalIndex(std::uint64_t pc) const
{
    return static_cast<unsigned>((pc >> 2) &
                                 ((std::uint64_t{1}
                                   << config_.bimodalLog) -
                                  1));
}

unsigned
Tage::tableIndex(std::uint64_t pc, unsigned table) const
{
    const std::uint64_t p = pc >> 2;
    const std::uint64_t mask =
        (std::uint64_t{1} << config_.tableLog) - 1;
    return static_cast<unsigned>(
        (p ^ (p >> (config_.tableLog - table - 1)) ^
         indexFold_[table].value()) &
        mask);
}

std::uint16_t
Tage::tableTag(std::uint64_t pc, unsigned table) const
{
    const std::uint64_t p = pc >> 2;
    const std::uint64_t mask =
        (std::uint64_t{1} << config_.tagBits) - 1;
    return static_cast<std::uint16_t>(
        (p ^ tagFold1_[table].value() ^
         (std::uint64_t{tagFold2_[table].value()} << 1)) &
        mask);
}

bool
Tage::predict(std::uint64_t pc)
{
    ++lookups_;
    last_ = Snapshot{};
    last_.pc = pc;

    const unsigned n = static_cast<unsigned>(tables_.size());
    for (unsigned t = 0; t < n; ++t) {
        last_.indices[t] = tableIndex(pc, t);
        last_.tags[t] = tableTag(pc, t);
    }

    // Longest-history matching table provides, next one alternates.
    for (int t = static_cast<int>(n) - 1; t >= 0; --t) {
        const TaggedEntry &e = tables_[t][last_.indices[t]];
        if (e.tag == last_.tags[t]) {
            if (last_.provider < 0) {
                last_.provider = t;
                last_.providerPred = e.ctr >= 0;
            } else if (last_.altProvider < 0) {
                last_.altProvider = t;
                last_.altPred = e.ctr >= 0;
                break;
            }
        }
    }

    const bool bimodal_pred = bimodal_[bimodalIndex(pc)] >= 0;
    if (last_.provider < 0) {
        last_.pred = bimodal_pred;
    } else {
        if (last_.altProvider < 0)
            last_.altPred = bimodal_pred;
        last_.pred = last_.providerPred;
    }
    return last_.pred;
}

void
Tage::pushHistory(bool bit)
{
    historyPos_ = (historyPos_ + 1) % history_.size();
    history_[historyPos_] = bit ? 1 : 0;
    const unsigned n = static_cast<unsigned>(tables_.size());
    for (unsigned t = 0; t < n; ++t) {
        indexFold_[t].update(history_, historyPos_);
        tagFold1_[t].update(history_, historyPos_);
        tagFold2_[t].update(history_, historyPos_);
    }
}

void
Tage::update(std::uint64_t pc, bool taken)
{
    assert(last_.pc == pc && "update must follow predict for same pc");
    const unsigned n = static_cast<unsigned>(tables_.size());
    const bool correct = last_.pred == taken;

    auto bump = [](std::int8_t &ctr, bool up, int lo, int hi) {
        if (up && ctr < hi)
            ++ctr;
        else if (!up && ctr > lo)
            --ctr;
    };

    if (last_.provider >= 0) {
        TaggedEntry &e =
            tables_[last_.provider][last_.indices[last_.provider]];
        // Useful counter: provider was useful when it disagreed with
        // the alternate and was right.
        if (last_.providerPred != last_.altPred) {
            if (last_.providerPred == taken) {
                if (e.useful < 3)
                    ++e.useful;
            } else if (e.useful > 0) {
                --e.useful;
            }
        }
        bump(e.ctr, taken, -4, 3);
    } else {
        bump(bimodal_[bimodalIndex(pc)], taken, -2, 1);
    }

    // Allocate a longer-history entry on a misprediction.
    if (!correct &&
        last_.provider < static_cast<int>(n) - 1) {
        const unsigned start = static_cast<unsigned>(last_.provider + 1);
        // Try tables above the provider; prefer not-useful entries,
        // with a random skip to spread allocations.
        unsigned first = start;
        if (start + 1 < n && rng_.oneIn(2))
            first = start + 1;
        bool allocated = false;
        for (unsigned t = first; t < n && !allocated; ++t) {
            TaggedEntry &e = tables_[t][last_.indices[t]];
            if (e.useful == 0) {
                e.tag = last_.tags[t];
                e.ctr = taken ? 0 : -1;
                allocated = true;
            }
        }
        if (!allocated) {
            // Decay usefulness so future allocations can succeed.
            for (unsigned t = start; t < n; ++t) {
                TaggedEntry &e = tables_[t][last_.indices[t]];
                if (e.useful > 0)
                    --e.useful;
            }
        }
    }

    pushHistory(taken);
}

void
Tage::updateUnconditional(std::uint64_t pc, bool taken)
{
    // Fold a path bit into the history for unconditional transfers so
    // call-chains disambiguate histories, as real TAGE front-ends do.
    pushHistory(((pc >> 2) ^ (taken ? 1 : 0)) & 1);
}

} // namespace emissary::frontend
