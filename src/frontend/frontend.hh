/**
 * @file
 * The decoupled front-end (paper §5.2).
 *
 * A branch-prediction unit (BPU) walks the committed-path trace one
 * dynamic basic block per cycle, predicting each block's terminator
 * with TAGE / ITTAGE / RAS and chasing block targets through a
 * basic-block BTB, and enqueues fetch targets into the FTQ (24
 * entries / 192 instructions). FDIP prefetches the instruction lines
 * of queued blocks into L1I ahead of fetch; the fetch stage delivers
 * instructions whose lines have arrived into the decode queue.
 *
 * Trace-driven control-flow handling (ChampSim-style): the front-end
 * always follows the committed path, and a wrong prediction halts
 * block enqueue at the offending branch until the back-end resolves
 * it, charging the full decoupled-front-end re-steer cost without
 * simulating wrong-path instructions.
 */

#ifndef EMISSARY_FRONTEND_FRONTEND_HH
#define EMISSARY_FRONTEND_FRONTEND_HH

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/inst.hh"
#include "frontend/btb.hh"
#include "frontend/ittage.hh"
#include "frontend/ras.hh"
#include "frontend/tage.hh"
#include "trace/record.hh"

namespace emissary::frontend
{

/** Front-end statistics for one measurement window. */
struct FrontEndStats
{
    std::uint64_t blocksFormed = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t indirectBranches = 0;
    std::uint64_t indirectMispredicts = 0;
    std::uint64_t returns = 0;
    std::uint64_t returnMispredicts = 0;
    std::uint64_t btbMisses = 0;
    std::uint64_t btbMissResteers = 0;  ///< Taken terminator unseen.
    std::uint64_t fetchedInstrs = 0;
    std::uint64_t fdipRequests = 0;

    void reset() { *this = FrontEndStats{}; }

    /** Component-wise sum — the time-parallel chunk splice
     *  (core::runPolicyTimeParallel) adds window slices. */
    FrontEndStats &
    operator+=(const FrontEndStats &other)
    {
        blocksFormed += other.blocksFormed;
        condBranches += other.condBranches;
        condMispredicts += other.condMispredicts;
        indirectBranches += other.indirectBranches;
        indirectMispredicts += other.indirectMispredicts;
        returns += other.returns;
        returnMispredicts += other.returnMispredicts;
        btbMisses += other.btbMisses;
        btbMissResteers += other.btbMissResteers;
        fetchedInstrs += other.fetchedInstrs;
        fdipRequests += other.fdipRequests;
        return *this;
    }
};

/** One FTQ entry: a predicted dynamic basic block. */
struct FtqEntry
{
    struct LineState
    {
        std::uint64_t lineAddr = 0;
        std::uint64_t readyCycle = 0;
        bool requested = false;
    };

    std::vector<core::DynInst> instrs;
    std::vector<LineState> lines;  ///< Unique lines, in PC order.
    unsigned consumed = 0;         ///< Instructions already fetched.
    bool linesRequested = false;   ///< FDIP / fetch issued requests.
};

/** The decoupled front-end. */
class FrontEnd
{
  public:
    struct Config
    {
        unsigned ftqEntries = 24;       ///< Table 4.
        unsigned ftqInstrs = 192;       ///< Table 4.
        unsigned fetchWidth = 8;        ///< Table 4.
        unsigned decodeQueueCap = 32;   ///< Buffer feeding decode.
        bool fdip = true;
        unsigned fdipLinesPerCycle = 2;
        unsigned maxBlockInstrs = 64;   ///< Safety cap per FTQ entry.
        unsigned resteerLatency = 10;   ///< After mispredict resolve.
        unsigned predecodeDelay = 3;    ///< BTB fill after bytes arrive.
        unsigned btbEntries = 16384;    ///< Table 4.
        unsigned btbWays = 8;
        Tage::Config tage;
        Ittage::Config ittage;
        unsigned rasDepth = 32;
    };

    FrontEnd(const Config &config, trace::TraceSource &source,
             cache::Hierarchy &hierarchy);

    /** BPU stage: form and predict at most one basic block. */
    void predict(std::uint64_t now);

    /** FDIP stage: prefetch lines for queued blocks. */
    void prefetch(std::uint64_t now);

    /**
     * Fetch stage: deliver line-ready instructions from the FTQ head
     * into @p decode_queue, up to fetchWidth.
     */
    void fetch(std::uint64_t now,
               std::deque<core::DynInst> &decode_queue);

    /** Back-end callback: the mispredicted branch @p seq resolved. */
    void onBranchResolved(std::uint64_t seq, std::uint64_t cycle);

    /**
     * The instruction line the decode stage is waiting on: set when
     * the FTQ head's next instruction sits in a line whose fill is
     * still outstanding. This is the line a decode starvation is
     * attributed to (§3).
     */
    std::optional<std::uint64_t>
    pendingFetchLine(std::uint64_t now) const;

    /** True when the FTQ holds no deliverable work. */
    bool ftqEmpty() const { return ftq_.empty(); }

    /** Sequence number of the mispredicted branch the BPU is halted
     *  on, if any (testing/diagnosis). */
    std::optional<std::uint64_t> haltedBranch() const
    {
        return haltedOnSeq_;
    }

    FrontEndStats &stats() { return stats_; }
    const FrontEndStats &stats() const { return stats_; }

    /**
     * Functional-warming mode, mirroring
     * cache::Hierarchy::setWarming: BTB/TAGE/RAS state trains
     * exactly as in a counted run while the stats accumulated under
     * warming are discarded when the mode ends, leaving the
     * measurement counters unperturbed.
     */
    void setWarming(bool warming)
    {
        if (warming_ && !warming)
            stats_.reset();
        warming_ = warming;
    }
    bool warming() const { return warming_; }

    BasicBlockBtb &btb() { return btb_; }
    Tage &tage() { return tage_; }

  private:
    /** Records pulled from the source per batched fill() call. The
     *  BPU consumes from this local buffer, so the per-instruction
     *  virtual TraceSource::next() dispatch is paid once per batch. */
    static constexpr std::size_t kFeedBatch = 256;

    /** Next committed record, refilling the feed buffer as needed. */
    const trace::TraceRecord &
    nextRecord()
    {
        if (feedPos_ == kFeedBatch) {
            source_.fill(feed_.data(), kFeedBatch);
            feedPos_ = 0;
        }
        return feed_[feedPos_++];
    }

    /** Pull trace records to build the next dynamic basic block. */
    FtqEntry buildBlock();

    /** Predict/teach the terminator; set halt/penalty state. */
    void predictTerminator(FtqEntry &entry, std::uint64_t now);

    /** Issue the hierarchy requests for a block's lines. */
    void requestLines(FtqEntry &entry, std::uint64_t now,
                      cache::RequestKind kind);

    Config config_;
    trace::TraceSource &source_;
    cache::Hierarchy &hierarchy_;

    BasicBlockBtb btb_;
    Tage tage_;
    Ittage ittage_;
    ReturnAddressStack ras_;

    std::array<trace::TraceRecord, kFeedBatch> feed_;
    std::size_t feedPos_ = kFeedBatch;  ///< Empty until first refill.

    std::deque<FtqEntry> ftq_;
    unsigned ftqInstrCount_ = 0;

    std::uint64_t seq_ = 0;
    std::uint64_t bpuStallUntil_ = 0;
    /** Line the BPU is stalled on (BTB-miss pre-decode wait); used to
     *  attribute decode starvation when the FTQ has drained. */
    std::optional<std::uint64_t> bpuWaitLine_;
    std::optional<std::uint64_t> haltedOnSeq_;

    FrontEndStats stats_;
    bool warming_ = false;
};

} // namespace emissary::frontend

#endif // EMISSARY_FRONTEND_FRONTEND_HH
