/**
 * @file
 * Basic-block-oriented branch target buffer (paper §5.2).
 *
 * Each entry describes one dynamic basic block: its starting address,
 * its size in (fixed-width) instructions, the class of the
 * control-flow instruction that ends it, and that instruction's taken
 * target. The BTB is indexed by block starting address, so the
 * predictor can chase block-to-block without decoding, exactly as
 * the paper's extended gem5 front-end does for Aarch64.
 */

#ifndef EMISSARY_FRONTEND_BTB_HH
#define EMISSARY_FRONTEND_BTB_HH

#include <cstdint>
#include <vector>

#include "trace/record.hh"

namespace emissary::frontend
{

/** One basic-block descriptor. */
struct BtbEntry
{
    std::uint64_t startPc = 0;
    std::uint16_t instrCount = 0;  ///< Instructions incl. terminator.
    trace::InstClass endClass = trace::InstClass::CondBranch;
    std::uint64_t takenTarget = 0;
};

/** Set-associative BTB with per-set LRU. */
class BasicBlockBtb
{
  public:
    /**
     * @param entries Total entry count (e.g. 16384, Table 4).
     * @param ways Associativity.
     */
    BasicBlockBtb(unsigned entries, unsigned ways);

    /** Look up the block starting at @p start_pc; nullptr on miss. */
    const BtbEntry *lookup(std::uint64_t start_pc);

    /** Install or refresh the block descriptor (pre-decoder path). */
    void install(const BtbEntry &entry);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Way
    {
        BtbEntry entry;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    unsigned setIndex(std::uint64_t start_pc) const;

    unsigned sets_;
    unsigned ways_;
    std::vector<Way> table_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace emissary::frontend

#endif // EMISSARY_FRONTEND_BTB_HH
