#include "frontend/ittage.hh"

#include <cassert>

namespace emissary::frontend
{

Ittage::Ittage() : Ittage(Config())
{
}

Ittage::Ittage(const Config &config) : config_(config), rng_(config.seed)
{
    const unsigned n =
        static_cast<unsigned>(config_.historyLengths.size());
    assert(n <= 8);
    tables_.assign(n,
                   std::vector<Entry>(std::size_t{1} << config_.tableLog));
    indexFold_.resize(n);
    tagFold_.resize(n);
    unsigned max_len = 0;
    for (unsigned t = 0; t < n; ++t) {
        const unsigned len = config_.historyLengths[t];
        max_len = std::max(max_len, len);
        indexFold_[t].init(len, config_.tableLog);
        tagFold_[t].init(len, config_.tagBits);
    }
    history_.assign(max_len + 64, 0);
}

unsigned
Ittage::tableIndex(std::uint64_t pc, unsigned table) const
{
    const std::uint64_t p = pc >> 2;
    const std::uint64_t mask =
        (std::uint64_t{1} << config_.tableLog) - 1;
    return static_cast<unsigned>(
        (p ^ (p >> (table + 3)) ^ indexFold_[table].value()) & mask);
}

std::uint16_t
Ittage::tableTag(std::uint64_t pc, unsigned table) const
{
    const std::uint64_t mask =
        (std::uint64_t{1} << config_.tagBits) - 1;
    return static_cast<std::uint16_t>(
        ((pc >> 2) ^ (tagFold_[table].value() << 1)) & mask);
}

std::uint64_t
Ittage::predict(std::uint64_t pc, std::uint64_t base_target)
{
    last_ = Snapshot{};
    last_.pc = pc;
    const unsigned n = static_cast<unsigned>(tables_.size());
    for (unsigned t = 0; t < n; ++t) {
        last_.indices[t] = tableIndex(pc, t);
        last_.tags[t] = tableTag(pc, t);
    }
    for (int t = static_cast<int>(n) - 1; t >= 0; --t) {
        const Entry &e = tables_[t][last_.indices[t]];
        if (e.tag == last_.tags[t] && e.target != 0) {
            last_.provider = t;
            last_.pred = e.target;
            break;
        }
    }
    if (last_.provider < 0)
        last_.pred = base_target;
    return last_.pred;
}

void
Ittage::pushHistory(std::uint64_t target)
{
    // Two folded path bits per resolved indirect keep histories
    // distinct even for targets that agree in their low bits.
    const std::uint64_t folded =
        target ^ (target >> 7) ^ (target >> 13) ^ (target >> 23);
    for (int i = 0; i < 2; ++i) {
        historyPos_ = (historyPos_ + 1) %
                      static_cast<unsigned>(history_.size());
        history_[historyPos_] =
            static_cast<std::uint8_t>((folded >> (2 + i)) & 1);
        for (unsigned t = 0; t < tables_.size(); ++t) {
            indexFold_[t].update(history_, historyPos_);
            tagFold_[t].update(history_, historyPos_);
        }
    }
}

void
Ittage::update(std::uint64_t pc, std::uint64_t target)
{
    assert(last_.pc == pc && "update must follow predict for same pc");
    const unsigned n = static_cast<unsigned>(tables_.size());
    const bool correct = last_.pred == target;

    if (last_.provider >= 0) {
        Entry &e = tables_[last_.provider][last_.indices[last_.provider]];
        if (e.target == target) {
            if (e.conf < 3)
                ++e.conf;
            e.useful = 1;
        } else if (e.conf > 0) {
            --e.conf;
        } else {
            e.target = target;
            e.conf = 1;
            e.useful = 0;
        }
    }

    if (!correct && last_.provider < static_cast<int>(n) - 1) {
        const unsigned start =
            static_cast<unsigned>(last_.provider + 1);
        bool allocated = false;
        for (unsigned t = start; t < n && !allocated; ++t) {
            Entry &e = tables_[t][last_.indices[t]];
            if (e.useful == 0) {
                e.tag = last_.tags[t];
                e.target = target;
                e.conf = 1;
                allocated = true;
            }
        }
        if (!allocated) {
            for (unsigned t = start; t < n; ++t)
                tables_[t][last_.indices[t]].useful = 0;
        }
    }

    pushHistory(target);
}

} // namespace emissary::frontend
