/**
 * @file
 * TAGE conditional branch direction predictor (Table 4).
 *
 * A bimodal base table backed by several partially-tagged tables
 * indexed with geometrically increasing global-history lengths.
 * Folded-history registers keep index/tag computation O(1) per
 * update. This is a compact faithful TAGE, not a contest build:
 * provider/alternate selection, useful counters, and on-mispredict
 * allocation into longer-history tables are all modelled.
 */

#ifndef EMISSARY_FRONTEND_TAGE_HH
#define EMISSARY_FRONTEND_TAGE_HH

#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace emissary::frontend
{

/** Incrementally folded global history for one table. */
class FoldedHistory
{
  public:
    void init(unsigned orig_length, unsigned compressed_length);

    /** Shift in the newest bit and retire the oldest one. */
    void update(const std::vector<std::uint8_t> &history, unsigned pos);

    std::uint32_t value() const { return comp_; }

  private:
    std::uint32_t comp_ = 0;
    unsigned compLength_ = 1;
    unsigned origLength_ = 0;
    unsigned outPoint_ = 0;
};

/** TAGE direction predictor. */
class Tage
{
  public:
    struct Config
    {
        unsigned bimodalLog = 13;      ///< log2 base-table entries.
        unsigned tableLog = 10;        ///< log2 tagged-table entries.
        unsigned tagBits = 9;
        std::vector<unsigned> historyLengths = {8, 24, 64, 160};
        std::uint64_t seed = 0x7A6EULL;
    };

    Tage();
    explicit Tage(const Config &config);

    /** Predict the direction of the conditional branch at @p pc. */
    bool predict(std::uint64_t pc);

    /**
     * Train with the resolved outcome and advance global history.
     * Must be called exactly once per predicted branch, in order.
     */
    void update(std::uint64_t pc, bool taken);

    /** Advance history for an unconditional control transfer. */
    void updateUnconditional(std::uint64_t pc, bool taken = true);

    std::uint64_t lookups() const { return lookups_; }

  private:
    struct TaggedEntry
    {
        std::int8_t ctr = 0;      ///< 3-bit signed counter.
        std::uint16_t tag = 0;
        std::uint8_t useful = 0;  ///< 2-bit useful counter.
    };

    unsigned tableIndex(std::uint64_t pc, unsigned table) const;
    std::uint16_t tableTag(std::uint64_t pc, unsigned table) const;
    unsigned bimodalIndex(std::uint64_t pc) const;
    void pushHistory(bool bit);

    /** Result of the last predict(), consumed by update(). */
    struct Snapshot
    {
        std::uint64_t pc = 0;
        int provider = -1;   ///< Table index, -1 = bimodal.
        int altProvider = -1;
        bool providerPred = false;
        bool altPred = false;
        bool pred = false;
        unsigned indices[8] = {};
        std::uint16_t tags[8] = {};
    };

    Config config_;
    std::vector<std::int8_t> bimodal_;  ///< 2-bit counters.
    std::vector<std::vector<TaggedEntry>> tables_;
    std::vector<FoldedHistory> indexFold_;
    std::vector<FoldedHistory> tagFold1_;
    std::vector<FoldedHistory> tagFold2_;
    std::vector<std::uint8_t> history_;  ///< Circular raw history.
    unsigned historyPos_ = 0;
    Snapshot last_;
    Rng rng_;
    std::uint64_t lookups_ = 0;
};

} // namespace emissary::frontend

#endif // EMISSARY_FRONTEND_TAGE_HH
