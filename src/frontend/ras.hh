/**
 * @file
 * Return address stack.
 */

#ifndef EMISSARY_FRONTEND_RAS_HH
#define EMISSARY_FRONTEND_RAS_HH

#include <cstdint>
#include <vector>

namespace emissary::frontend
{

/** Fixed-depth circular return-address stack. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 32)
        : stack_(depth, 0)
    {}

    /** Push the return address of a call. */
    void
    push(std::uint64_t return_pc)
    {
        top_ = (top_ + 1) % stack_.size();
        stack_[top_] = return_pc;
        if (occupancy_ < stack_.size())
            ++occupancy_;
    }

    /** Pop and return the predicted return target (0 when empty). */
    std::uint64_t
    pop()
    {
        if (occupancy_ == 0)
            return 0;
        const std::uint64_t value = stack_[top_];
        top_ = (top_ + stack_.size() - 1) % stack_.size();
        --occupancy_;
        return value;
    }

    std::size_t occupancy() const { return occupancy_; }

  private:
    std::vector<std::uint64_t> stack_;
    std::size_t top_ = 0;
    std::size_t occupancy_ = 0;
};

} // namespace emissary::frontend

#endif // EMISSARY_FRONTEND_RAS_HH
